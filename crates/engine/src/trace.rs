//! Execution tracing: an `EXPLAIN ANALYZE` for executable plans.
//!
//! A mediator operator debugging a slow plan needs to know *where* the
//! source calls go: which literal is invoked how often (the nested-loop
//! multiplicity), how many tuples each call transfers, and how many
//! bindings survive into the next literal. [`eval_ordered_cq_traced`] runs
//! the exact same evaluation as [`crate::eval_ordered_cq`] while
//! collecting a per-literal profile.

use crate::error::EngineError;
use crate::source::SourceRegistry;
use crate::value::{Tuple, Value};
use lap_ir::{ConjunctiveQuery, Term, Var};
use lap_obs::Histogram;
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::time::{Duration, Instant};

/// Per-literal runtime counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LiteralTrace {
    /// Rendering of the literal (position in the body order).
    pub literal: String,
    /// Times the literal was reached — the number of binding tuples
    /// flowing in from the literals to its left.
    pub invocations: u64,
    /// Source calls issued (one per invocation; cached calls still count —
    /// they are requests the plan makes, whether or not a wire is hit).
    pub calls: u64,
    /// Tuples transferred from the source across all calls.
    pub rows_returned: u64,
    /// Bindings that survived this literal (flowed to the right).
    pub bindings_out: u64,
}

/// Merged runtime totals across a set of literal traces.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceTotals {
    /// Total literal invocations.
    pub invocations: u64,
    /// Total source requests (including cache-answered ones).
    pub calls: u64,
    /// Total tuples transferred.
    pub rows_returned: u64,
    /// Total bindings that survived their literal.
    pub bindings_out: u64,
}

impl TraceTotals {
    fn absorb(&mut self, l: &LiteralTrace) {
        self.invocations += l.invocations;
        self.calls += l.calls;
        self.rows_returned += l.rows_returned;
        self.bindings_out += l.bindings_out;
    }
}

/// The profile of one executed CQ¬ plan.
#[derive(Clone, Debug, PartialEq)]
pub struct CqTrace {
    /// Per-literal counters, in body order.
    pub literals: Vec<LiteralTrace>,
    /// Distinct answers produced.
    pub answers: u64,
    /// Wall time spent evaluating this disjunct.
    pub elapsed: Duration,
}

impl CqTrace {
    /// The merged totals across this plan's literals.
    pub fn totals(&self) -> TraceTotals {
        let mut t = TraceTotals::default();
        for l in &self.literals {
            t.absorb(l);
        }
        t
    }
}

impl fmt::Display for CqTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:>10}  {:>8}  {:>10}  {:>10}  literal",
            "invoked", "calls", "rows", "out"
        )?;
        for l in &self.literals {
            writeln!(
                f,
                "{:>10}  {:>8}  {:>10}  {:>10}  {}",
                l.invocations, l.calls, l.rows_returned, l.bindings_out, l.literal
            )?;
        }
        write!(
            f,
            "{} answer(s) in {:.2?}",
            self.answers, self.elapsed
        )
    }
}

/// The profile of one executed UCQ¬ plan: per-disjunct sub-traces plus the
/// merged view — the `EXPLAIN ANALYZE` extended from single CQs to unions.
#[derive(Clone, Debug, PartialEq)]
pub struct UnionTrace {
    /// `(rendered plan, profile)` per disjunct, in union order.
    pub disjuncts: Vec<(String, CqTrace)>,
    /// Distinct answers across the whole union.
    pub answers: u64,
    /// Wall time for the whole union.
    pub elapsed: Duration,
}

impl UnionTrace {
    /// The merged totals across every literal of every disjunct.
    pub fn totals(&self) -> TraceTotals {
        let mut t = TraceTotals::default();
        for (_, trace) in &self.disjuncts {
            for l in &trace.literals {
                t.absorb(l);
            }
        }
        t
    }
}

impl fmt::Display for UnionTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (plan, trace)) in self.disjuncts.iter().enumerate() {
            writeln!(f, "disjunct {i}: {plan}")?;
            writeln!(f, "{trace}")?;
        }
        let t = self.totals();
        write!(
            f,
            "union totals: {} invocations, {} calls, {} rows, {} bindings; {} answer(s) in {:.2?}",
            t.invocations, t.calls, t.rows_returned, t.bindings_out, self.answers, self.elapsed
        )
    }
}

/// Evaluates an ordered CQ¬ plan exactly like [`crate::eval_ordered_cq`],
/// additionally returning the per-literal profile. Fan-out per positive
/// literal call is also recorded into the registry recorder's
/// `eval.literal_fanout` histogram.
pub fn eval_ordered_cq_traced(
    cq: &ConjunctiveQuery,
    null_vars: &[Var],
    reg: &mut SourceRegistry<'_>,
) -> Result<(BTreeSet<Tuple>, CqTrace), EngineError> {
    let start = Instant::now();
    let mut out = BTreeSet::new();
    let mut env: HashMap<Var, Value> = HashMap::new();
    let mut literals: Vec<LiteralTrace> = cq
        .body
        .iter()
        .map(|l| LiteralTrace {
            literal: l.to_string(),
            ..LiteralTrace::default()
        })
        .collect();
    let fanout = reg.recorder().histogram("eval.literal_fanout");
    rec(cq, null_vars, reg, 0, &mut env, &mut out, &mut literals, &fanout)?;
    let trace = CqTrace {
        literals,
        answers: out.len() as u64,
        elapsed: start.elapsed(),
    };
    Ok((out, trace))
}

/// Evaluates a union of ordered CQ¬ plans exactly like
/// [`crate::eval_ordered_union`], additionally returning the per-disjunct
/// profiles with merged totals. Each disjunct runs under its own span when
/// the registry's recorder has tracing enabled.
pub fn eval_ordered_union_traced(
    parts: &[(ConjunctiveQuery, Vec<Var>)],
    reg: &mut SourceRegistry<'_>,
) -> Result<(BTreeSet<Tuple>, UnionTrace), EngineError> {
    let recorder = reg.recorder().clone();
    let start = Instant::now();
    let mut out = BTreeSet::new();
    let mut disjuncts = Vec::with_capacity(parts.len());
    for (i, (cq, null_vars)) in parts.iter().enumerate() {
        let _span = recorder.span_lazy(|| format!("disjunct {i}: {}", cq.head));
        let (rows, trace) = eval_ordered_cq_traced(cq, null_vars, reg)?;
        out.extend(rows);
        disjuncts.push((cq.to_string(), trace));
    }
    let trace = UnionTrace {
        disjuncts,
        answers: out.len() as u64,
        elapsed: start.elapsed(),
    };
    Ok((out, trace))
}

#[allow(clippy::too_many_arguments)]
fn rec(
    cq: &ConjunctiveQuery,
    null_vars: &[Var],
    reg: &mut SourceRegistry<'_>,
    depth: usize,
    env: &mut HashMap<Var, Value>,
    out: &mut BTreeSet<Tuple>,
    literals: &mut [LiteralTrace],
    fanout: &Histogram,
) -> Result<(), EngineError> {
    let Some(lit) = cq.body.get(depth) else {
        let mut tuple = Vec::with_capacity(cq.head.args.len());
        for &arg in &cq.head.args {
            match arg {
                Term::Const(c) => tuple.push(Value::from(c)),
                Term::Var(v) => match env.get(&v) {
                    Some(&val) => tuple.push(val),
                    None if null_vars.contains(&v) => tuple.push(Value::Null),
                    None => {
                        return Err(EngineError::NotExecutable {
                            literal: cq.head.to_string(),
                            reason: format!("head variable {v} is neither bound nor declared null"),
                        })
                    }
                },
            }
        }
        out.insert(tuple);
        return Ok(());
    };
    literals[depth].invocations += 1;
    let atom = &lit.atom;
    let name = atom.predicate.name;
    if lit.positive {
        let decl = reg
            .schema()
            .relation(name)
            .ok_or_else(|| EngineError::UnknownRelation(name.to_string()))?;
        let bound: Vec<Option<Value>> = atom
            .args
            .iter()
            .map(|&t| match t {
                Term::Const(c) => Some(Value::from(c)),
                Term::Var(v) => env.get(&v).copied(),
            })
            .collect();
        let Some(pattern) = decl.usable_pattern(|j| bound[j].is_some()) else {
            return Err(EngineError::NotExecutable {
                literal: lit.to_string(),
                reason: "no usable access pattern".to_owned(),
            });
        };
        let inputs: Vec<Option<Value>> = (0..pattern.arity())
            .map(|j| if pattern.is_input(j) { bound[j] } else { None })
            .collect();
        let rows = reg.call(name, pattern, &inputs)?;
        literals[depth].calls += 1;
        literals[depth].rows_returned += rows.len() as u64;
        fanout.record(rows.len() as u64);
        'rows: for row in rows {
            let mut bound_here: Vec<Var> = Vec::new();
            for (&arg, &val) in atom.args.iter().zip(row.iter()) {
                match arg {
                    Term::Const(c) => {
                        if Value::from(c) != val {
                            for v in bound_here.drain(..) {
                                env.remove(&v);
                            }
                            continue 'rows;
                        }
                    }
                    Term::Var(v) => match env.get(&v) {
                        Some(&prev) if prev != val => {
                            for v in bound_here.drain(..) {
                                env.remove(&v);
                            }
                            continue 'rows;
                        }
                        Some(_) => {}
                        None => {
                            env.insert(v, val);
                            bound_here.push(v);
                        }
                    },
                }
            }
            literals[depth].bindings_out += 1;
            rec(cq, null_vars, reg, depth + 1, env, out, literals, fanout)?;
            for v in bound_here {
                env.remove(&v);
            }
        }
        Ok(())
    } else {
        let mut values = Vec::with_capacity(atom.args.len());
        for &arg in &atom.args {
            match arg {
                Term::Const(c) => values.push(Value::from(c)),
                Term::Var(v) => match env.get(&v) {
                    Some(&val) => values.push(val),
                    None => {
                        return Err(EngineError::UnboundNegation {
                            literal: lit.to_string(),
                        })
                    }
                },
            }
        }
        literals[depth].calls += 1;
        let present = reg.membership_test(name, &values)?;
        if !present {
            literals[depth].bindings_out += 1;
            rec(cq, null_vars, reg, depth + 1, env, out, literals, fanout)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_ordered_cq;
    use crate::instance::Database;
    use lap_ir::{parse_cq, Schema};

    fn setup() -> (Database, Schema) {
        let db = Database::from_facts(
            r#"
            C(1, "a"). C(2, "b"). C(3, "c").
            B(1, "a", "t1"). B(2, "b", "t2").
            L(1).
            "#,
        )
        .unwrap();
        let schema =
            Schema::from_patterns(&[("B", "ioo"), ("C", "oo"), ("L", "o")]).unwrap();
        (db, schema)
    }

    #[test]
    fn traced_answers_match_untraced() {
        let (db, schema) = setup();
        let plan = parse_cq("Q(i, t) :- C(i, a), B(i, a, t), not L(i).").unwrap();
        let mut reg1 = SourceRegistry::new(&db, &schema);
        let plain = eval_ordered_cq(&plan, &[], &mut reg1).unwrap();
        let mut reg2 = SourceRegistry::new(&db, &schema);
        let (traced, trace) = eval_ordered_cq_traced(&plan, &[], &mut reg2).unwrap();
        assert_eq!(plain, traced);
        assert_eq!(reg1.stats().calls, reg2.stats().calls);
        assert_eq!(trace.answers, traced.len() as u64);
    }

    #[test]
    fn counters_reflect_the_nested_loop() {
        let (db, schema) = setup();
        let plan = parse_cq("Q(i, t) :- C(i, a), B(i, a, t), not L(i).").unwrap();
        let mut reg = SourceRegistry::new(&db, &schema);
        let (_, trace) = eval_ordered_cq_traced(&plan, &[], &mut reg).unwrap();
        // C: reached once, one scan, 3 rows, 3 bindings out.
        assert_eq!(trace.literals[0].invocations, 1);
        assert_eq!(trace.literals[0].calls, 1);
        assert_eq!(trace.literals[0].rows_returned, 3);
        assert_eq!(trace.literals[0].bindings_out, 3);
        // B: reached 3 times (one per C row); only isbn 1 and 2 match.
        assert_eq!(trace.literals[1].invocations, 3);
        assert_eq!(trace.literals[1].calls, 3);
        assert_eq!(trace.literals[1].bindings_out, 2);
        // ¬L: reached twice; isbn 1 is in the library, so one survives.
        assert_eq!(trace.literals[2].invocations, 2);
        assert_eq!(trace.literals[2].bindings_out, 1);
        assert_eq!(trace.answers, 1);
    }

    #[test]
    fn display_renders_a_profile_table() {
        let (db, schema) = setup();
        let plan = parse_cq("Q(i) :- C(i, a), not L(i).").unwrap();
        let mut reg = SourceRegistry::new(&db, &schema);
        let (_, trace) = eval_ordered_cq_traced(&plan, &[], &mut reg).unwrap();
        let shown = trace.to_string();
        assert!(shown.contains("not L(i)"), "{shown}");
        assert!(shown.contains("answer(s) in"), "{shown}");
    }

    #[test]
    fn union_trace_merges_totals_and_spans_disjuncts() {
        let (db, schema) = setup();
        let rec = lap_obs::Recorder::with_tracing();
        let mut reg = SourceRegistry::new(&db, &schema).recording(&rec);
        let p1 = parse_cq("Q(i) :- C(i, a), not L(i).").unwrap();
        let p2 = parse_cq("Q(i) :- C(i, a).").unwrap();
        let (rows, trace) =
            eval_ordered_union_traced(&[(p1, vec![]), (p2, vec![])], &mut reg).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(trace.answers, 3);
        assert_eq!(trace.disjuncts.len(), 2);
        let totals = trace.totals();
        let per_disjunct: u64 = trace
            .disjuncts
            .iter()
            .map(|(_, t)| t.totals().calls)
            .sum();
        assert_eq!(totals.calls, per_disjunct);
        // Every request the plan made is visible in the registry stats:
        // positive calls and membership probes are disjoint counters.
        let s = reg.stats();
        assert_eq!(totals.calls, s.calls + reg.membership_probes() + s.cache_hits);
        // Fan-out histogram saw every positive-literal call.
        let snap = rec.snapshot();
        assert!(snap.metrics.histograms["eval.literal_fanout"].count > 0);
        // Per-disjunct spans were recorded.
        assert!(snap.find_span("disjunct 0: Q(i)").is_some());
        assert!(snap.find_span("disjunct 1: Q(i)").is_some());
        let shown = trace.to_string();
        assert!(shown.contains("union totals:"), "{shown}");
    }

    #[test]
    fn errors_match_untraced_behaviour() {
        let (db, schema) = setup();
        let bad = parse_cq("Q(i, t) :- B(i, a, t), C(i, a).").unwrap();
        let mut reg = SourceRegistry::new(&db, &schema);
        assert!(eval_ordered_cq_traced(&bad, &[], &mut reg).is_err());
    }
}
