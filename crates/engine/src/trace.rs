//! Execution tracing: an `EXPLAIN ANALYZE` for executable plans.
//!
//! A mediator operator debugging a slow plan needs to know *where* the
//! source calls go: which literal is invoked how often (the nested-loop
//! multiplicity), how many tuples each call transfers, and how many
//! bindings survive into the next literal. [`eval_ordered_cq_traced`] runs
//! the exact same evaluation as [`crate::eval_ordered_cq`] while
//! collecting a per-literal profile.

use crate::error::EngineError;
use crate::source::SourceRegistry;
use crate::value::{Tuple, Value};
use lap_ir::{ConjunctiveQuery, Term, Var};
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::time::{Duration, Instant};

/// Per-literal runtime counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LiteralTrace {
    /// Rendering of the literal (position in the body order).
    pub literal: String,
    /// Times the literal was reached — the number of binding tuples
    /// flowing in from the literals to its left.
    pub invocations: u64,
    /// Source calls issued (one per invocation; cached calls still count —
    /// they are requests the plan makes, whether or not a wire is hit).
    pub calls: u64,
    /// Tuples transferred from the source across all calls.
    pub rows_returned: u64,
    /// Bindings that survived this literal (flowed to the right).
    pub bindings_out: u64,
}

/// The profile of one executed CQ¬ plan.
#[derive(Clone, Debug, PartialEq)]
pub struct CqTrace {
    /// Per-literal counters, in body order.
    pub literals: Vec<LiteralTrace>,
    /// Distinct answers produced.
    pub answers: u64,
    /// Wall time spent evaluating this disjunct.
    pub elapsed: Duration,
}

impl fmt::Display for CqTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:>10}  {:>8}  {:>10}  {:>10}  literal",
            "invoked", "calls", "rows", "out"
        )?;
        for l in &self.literals {
            writeln!(
                f,
                "{:>10}  {:>8}  {:>10}  {:>10}  {}",
                l.invocations, l.calls, l.rows_returned, l.bindings_out, l.literal
            )?;
        }
        write!(
            f,
            "{} answer(s) in {:.2?}",
            self.answers, self.elapsed
        )
    }
}

/// Evaluates an ordered CQ¬ plan exactly like [`crate::eval_ordered_cq`],
/// additionally returning the per-literal profile.
pub fn eval_ordered_cq_traced(
    cq: &ConjunctiveQuery,
    null_vars: &[Var],
    reg: &mut SourceRegistry<'_>,
) -> Result<(BTreeSet<Tuple>, CqTrace), EngineError> {
    let start = Instant::now();
    let mut out = BTreeSet::new();
    let mut env: HashMap<Var, Value> = HashMap::new();
    let mut literals: Vec<LiteralTrace> = cq
        .body
        .iter()
        .map(|l| LiteralTrace {
            literal: l.to_string(),
            ..LiteralTrace::default()
        })
        .collect();
    rec(cq, null_vars, reg, 0, &mut env, &mut out, &mut literals)?;
    let trace = CqTrace {
        literals,
        answers: out.len() as u64,
        elapsed: start.elapsed(),
    };
    Ok((out, trace))
}

#[allow(clippy::too_many_arguments)]
fn rec(
    cq: &ConjunctiveQuery,
    null_vars: &[Var],
    reg: &mut SourceRegistry<'_>,
    depth: usize,
    env: &mut HashMap<Var, Value>,
    out: &mut BTreeSet<Tuple>,
    literals: &mut [LiteralTrace],
) -> Result<(), EngineError> {
    let Some(lit) = cq.body.get(depth) else {
        let mut tuple = Vec::with_capacity(cq.head.args.len());
        for &arg in &cq.head.args {
            match arg {
                Term::Const(c) => tuple.push(Value::from(c)),
                Term::Var(v) => match env.get(&v) {
                    Some(&val) => tuple.push(val),
                    None if null_vars.contains(&v) => tuple.push(Value::Null),
                    None => {
                        return Err(EngineError::NotExecutable {
                            literal: cq.head.to_string(),
                            reason: format!("head variable {v} is neither bound nor declared null"),
                        })
                    }
                },
            }
        }
        out.insert(tuple);
        return Ok(());
    };
    literals[depth].invocations += 1;
    let atom = &lit.atom;
    let name = atom.predicate.name;
    if lit.positive {
        let decl = reg
            .schema()
            .relation(name)
            .ok_or_else(|| EngineError::UnknownRelation(name.to_string()))?;
        let bound: Vec<Option<Value>> = atom
            .args
            .iter()
            .map(|&t| match t {
                Term::Const(c) => Some(Value::from(c)),
                Term::Var(v) => env.get(&v).copied(),
            })
            .collect();
        let Some(pattern) = decl.usable_pattern(|j| bound[j].is_some()) else {
            return Err(EngineError::NotExecutable {
                literal: lit.to_string(),
                reason: "no usable access pattern".to_owned(),
            });
        };
        let inputs: Vec<Option<Value>> = (0..pattern.arity())
            .map(|j| if pattern.is_input(j) { bound[j] } else { None })
            .collect();
        let rows = reg.call(name, pattern, &inputs)?;
        literals[depth].calls += 1;
        literals[depth].rows_returned += rows.len() as u64;
        'rows: for row in rows {
            let mut bound_here: Vec<Var> = Vec::new();
            for (&arg, &val) in atom.args.iter().zip(row.iter()) {
                match arg {
                    Term::Const(c) => {
                        if Value::from(c) != val {
                            for v in bound_here.drain(..) {
                                env.remove(&v);
                            }
                            continue 'rows;
                        }
                    }
                    Term::Var(v) => match env.get(&v) {
                        Some(&prev) if prev != val => {
                            for v in bound_here.drain(..) {
                                env.remove(&v);
                            }
                            continue 'rows;
                        }
                        Some(_) => {}
                        None => {
                            env.insert(v, val);
                            bound_here.push(v);
                        }
                    },
                }
            }
            literals[depth].bindings_out += 1;
            rec(cq, null_vars, reg, depth + 1, env, out, literals)?;
            for v in bound_here {
                env.remove(&v);
            }
        }
        Ok(())
    } else {
        let mut values = Vec::with_capacity(atom.args.len());
        for &arg in &atom.args {
            match arg {
                Term::Const(c) => values.push(Value::from(c)),
                Term::Var(v) => match env.get(&v) {
                    Some(&val) => values.push(val),
                    None => {
                        return Err(EngineError::UnboundNegation {
                            literal: lit.to_string(),
                        })
                    }
                },
            }
        }
        literals[depth].calls += 1;
        let present = reg.membership_test(name, &values)?;
        if !present {
            literals[depth].bindings_out += 1;
            rec(cq, null_vars, reg, depth + 1, env, out, literals)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_ordered_cq;
    use crate::instance::Database;
    use lap_ir::{parse_cq, Schema};

    fn setup() -> (Database, Schema) {
        let db = Database::from_facts(
            r#"
            C(1, "a"). C(2, "b"). C(3, "c").
            B(1, "a", "t1"). B(2, "b", "t2").
            L(1).
            "#,
        )
        .unwrap();
        let schema =
            Schema::from_patterns(&[("B", "ioo"), ("C", "oo"), ("L", "o")]).unwrap();
        (db, schema)
    }

    #[test]
    fn traced_answers_match_untraced() {
        let (db, schema) = setup();
        let plan = parse_cq("Q(i, t) :- C(i, a), B(i, a, t), not L(i).").unwrap();
        let mut reg1 = SourceRegistry::new(&db, &schema);
        let plain = eval_ordered_cq(&plan, &[], &mut reg1).unwrap();
        let mut reg2 = SourceRegistry::new(&db, &schema);
        let (traced, trace) = eval_ordered_cq_traced(&plan, &[], &mut reg2).unwrap();
        assert_eq!(plain, traced);
        assert_eq!(reg1.stats().calls, reg2.stats().calls);
        assert_eq!(trace.answers, traced.len() as u64);
    }

    #[test]
    fn counters_reflect_the_nested_loop() {
        let (db, schema) = setup();
        let plan = parse_cq("Q(i, t) :- C(i, a), B(i, a, t), not L(i).").unwrap();
        let mut reg = SourceRegistry::new(&db, &schema);
        let (_, trace) = eval_ordered_cq_traced(&plan, &[], &mut reg).unwrap();
        // C: reached once, one scan, 3 rows, 3 bindings out.
        assert_eq!(trace.literals[0].invocations, 1);
        assert_eq!(trace.literals[0].calls, 1);
        assert_eq!(trace.literals[0].rows_returned, 3);
        assert_eq!(trace.literals[0].bindings_out, 3);
        // B: reached 3 times (one per C row); only isbn 1 and 2 match.
        assert_eq!(trace.literals[1].invocations, 3);
        assert_eq!(trace.literals[1].calls, 3);
        assert_eq!(trace.literals[1].bindings_out, 2);
        // ¬L: reached twice; isbn 1 is in the library, so one survives.
        assert_eq!(trace.literals[2].invocations, 2);
        assert_eq!(trace.literals[2].bindings_out, 1);
        assert_eq!(trace.answers, 1);
    }

    #[test]
    fn display_renders_a_profile_table() {
        let (db, schema) = setup();
        let plan = parse_cq("Q(i) :- C(i, a), not L(i).").unwrap();
        let mut reg = SourceRegistry::new(&db, &schema);
        let (_, trace) = eval_ordered_cq_traced(&plan, &[], &mut reg).unwrap();
        let shown = trace.to_string();
        assert!(shown.contains("not L(i)"), "{shown}");
        assert!(shown.contains("answer(s) in"), "{shown}");
    }

    #[test]
    fn errors_match_untraced_behaviour() {
        let (db, schema) = setup();
        let bad = parse_cq("Q(i, t) :- B(i, a, t), C(i, a).").unwrap();
        let mut reg = SourceRegistry::new(&db, &schema);
        assert!(eval_ordered_cq_traced(&bad, &[], &mut reg).is_err());
    }
}
