//! Bounded worker pool for overlapped source I/O.
//!
//! The batched executor deduplicates a batch's source calls and hands the
//! surviving data fetches to this module. Jobs run on a hand-rolled pool
//! of scoped threads (no async runtime, zero dependencies): workers claim
//! jobs from a shared cursor, push results onto a completion queue as they
//! finish, and the caller merges the queue back into **issue order** —
//! so answers never depend on which worker finished first.
//!
//! Two entry points share that merge discipline:
//!
//! * [`run_ordered`] — the production path: up to `workers` scoped
//!   threads, real concurrency, deterministic results.
//! * [`run_adversarial`] — the test harness: a seeded permutation of the
//!   completion order, executed on one thread, feeding the same merge.
//!   Sweeping seeds simulates every way in-flight calls could land; a
//!   correct merge must produce byte-identical output for all of them.
//!
//! Wall-clock simulation lives elsewhere (the registry's virtual clock
//! schedules latencies over `workers` lanes); this module only moves the
//! actual row data, which carries no randomness and therefore commutes.

use lap_prng::StdRng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// One finished job on the completion queue: the job's issue index and
/// its result. Arrival order is whatever the threads produced; the merge
/// re-orders by `index`.
pub struct Completion<T> {
    /// Position of the job in the issued job list.
    pub index: usize,
    /// The job's result.
    pub value: T,
}

/// Merges a drained completion queue back into issue order. Panics if a
/// job is missing or duplicated — both would mean the pool lost work.
fn merge_completions<T>(n: usize, completions: Vec<Completion<T>>) -> Vec<T> {
    assert_eq!(completions.len(), n, "every issued job must complete exactly once");
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for c in completions {
        assert!(slots[c.index].is_none(), "job {} completed twice", c.index);
        slots[c.index] = Some(c.value);
    }
    slots
        .into_iter()
        .map(|s| s.expect("merge verified completeness"))
        .collect()
}

/// Runs `jobs` on up to `workers` scoped threads and returns the results
/// in issue order, regardless of completion order.
///
/// With `workers <= 1` (or at most one job) the jobs run inline on the
/// calling thread — no pool, no queue, bit-identical to a plain loop.
pub fn run_ordered<T, F>(workers: usize, jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = jobs.len();
    if workers <= 1 || n <= 1 {
        return jobs.into_iter().map(|job| job()).collect();
    }
    // Workers take jobs through a claim cursor; FnOnce closures leave
    // through a Mutex<Option<_>> so each is consumed exactly once.
    let cursor = AtomicUsize::new(0);
    let jobs: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let (tx, rx) = mpsc::channel::<Completion<T>>();
    std::thread::scope(|scope| {
        for _ in 0..workers.min(n) {
            let tx = tx.clone();
            let cursor = &cursor;
            let jobs = &jobs;
            scope.spawn(move || loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                if index >= n {
                    break;
                }
                let job = jobs[index]
                    .lock()
                    .expect("job slot lock")
                    .take()
                    .expect("each job is claimed once");
                let value = job();
                if tx.send(Completion { index, value }).is_err() {
                    break;
                }
            });
        }
    });
    drop(tx);
    merge_completions(n, rx.into_iter().collect())
}

/// Runs `jobs` in a seeded pseudo-random **completion order** (one thread,
/// Fisher–Yates over the issue indices) and merges the results back into
/// issue order — the adversarial scheduler of the interleaving suite.
///
/// Any observable difference between two seeds, or between a seed and
/// [`run_ordered`], is an order-dependence bug in the caller.
pub fn run_adversarial<T, F>(seed: u64, jobs: Vec<F>) -> Vec<T>
where
    F: FnOnce() -> T,
{
    let n = jobs.len();
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    let mut slots: Vec<Option<F>> = jobs.into_iter().map(Some).collect();
    let mut completions: Vec<Completion<T>> = Vec::with_capacity(n);
    for index in order {
        let job = slots[index].take().expect("each job runs once");
        completions.push(Completion { index, value: job() });
    }
    merge_completions(n, completions)
}

/// A bounded admission gate: at most `permits` holders at a time, with a
/// **bounded** wait for admission — the back-pressure primitive of the
/// `lapd` query service. A session thread calls [`Gate::try_enter`]
/// before executing a query; when the gate stays full past the wait
/// budget the caller gets `None` and answers the client with a `quota`
/// error frame instead of hanging (the degradation contract of the
/// resilience layer, applied to admission).
///
/// Built on `Mutex` + `Condvar` like the rest of this module: no async
/// runtime, no dependencies, fair enough for a daemon (waiters are woken
/// together and race for the freed permit; the wait budget bounds
/// starvation by converting it into an honest rejection).
#[derive(Debug)]
pub struct Gate {
    permits: usize,
    state: Mutex<usize>,
    freed: Condvar,
}

impl Gate {
    /// A gate admitting at most `permits` concurrent holders (min 1).
    pub fn new(permits: usize) -> Gate {
        Gate {
            permits: permits.max(1),
            state: Mutex::new(0),
            freed: Condvar::new(),
        }
    }

    /// The gate's capacity.
    pub fn permits(&self) -> usize {
        self.permits
    }

    /// Holders currently admitted.
    pub fn in_use(&self) -> usize {
        *self.state.lock().expect("gate mutex not poisoned")
    }

    /// Tries to enter the gate, waiting at most `wait` for a permit.
    /// Returns a guard that releases the permit on drop, or `None` when
    /// the gate stayed full for the whole budget.
    pub fn try_enter(&self, wait: Duration) -> Option<GateGuard<'_>> {
        let deadline = Instant::now() + wait;
        let mut used = self.state.lock().expect("gate mutex not poisoned");
        loop {
            if *used < self.permits {
                *used += 1;
                return Some(GateGuard { gate: self });
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, timeout) = self
                .freed
                .wait_timeout(used, deadline - now)
                .expect("gate mutex not poisoned");
            used = guard;
            if timeout.timed_out() && *used >= self.permits {
                return None;
            }
        }
    }

    /// [`Gate::try_enter`] with no willingness to wait: admit now or
    /// reject now.
    pub fn try_enter_now(&self) -> Option<GateGuard<'_>> {
        self.try_enter(Duration::ZERO)
    }
}

/// A held admission permit; dropping it frees the slot and wakes one
/// waiter.
#[derive(Debug)]
pub struct GateGuard<'a> {
    gate: &'a Gate,
}

impl Drop for GateGuard<'_> {
    fn drop(&mut self) {
        let mut used = self.gate.state.lock().expect("gate mutex not poisoned");
        *used = used.saturating_sub(1);
        drop(used);
        self.gate.freed.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn ordered_results_land_in_issue_order() {
        for workers in [1, 2, 4, 16] {
            let jobs: Vec<_> = (0..40u64).map(|i| move || i * i).collect();
            let got = run_ordered(workers, jobs);
            let want: Vec<u64> = (0..40).map(|i| i * i).collect();
            assert_eq!(got, want, "workers={workers}");
        }
    }

    #[test]
    fn pool_actually_shares_work_across_threads() {
        // Thread scheduling decides which worker claims which job, so the
        // only deterministic fact is the important one: every job ran
        // exactly once and every result came back.
        let ran = AtomicU64::new(0);
        let jobs: Vec<_> = (0..100)
            .map(|_| {
                let ran = &ran;
                move || ran.fetch_add(1, Ordering::Relaxed)
            })
            .collect();
        let results = run_ordered(8, jobs);
        assert_eq!(results.len(), 100);
        assert_eq!(ran.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn adversarial_order_differs_but_merge_does_not() {
        let baseline: Vec<usize> = (1..=32).collect();
        let mut seen_orders = std::collections::BTreeSet::new();
        for seed in 0..16u64 {
            // Track the execution order through a side channel.
            let log = Mutex::new(Vec::new());
            let jobs: Vec<_> = (0..32usize)
                .map(|i| {
                    let log = &log;
                    move || {
                        log.lock().unwrap().push(i);
                        i + 1
                    }
                })
                .collect();
            assert_eq!(run_adversarial(seed, jobs), baseline, "seed {seed}");
            seen_orders.insert(log.into_inner().unwrap());
        }
        assert!(seen_orders.len() > 1, "seeds must actually permute execution order");
    }

    #[test]
    fn gate_admits_up_to_capacity_then_rejects_without_waiting() {
        let gate = Gate::new(2);
        let a = gate.try_enter_now().expect("first permit");
        let _b = gate.try_enter_now().expect("second permit");
        assert_eq!(gate.in_use(), 2);
        assert!(gate.try_enter_now().is_none(), "third must be rejected");
        drop(a);
        assert!(gate.try_enter_now().is_some(), "freed permit is reusable");
    }

    #[test]
    fn gate_bounded_wait_picks_up_a_freed_permit() {
        let gate = Gate::new(1);
        std::thread::scope(|scope| {
            let held = gate.try_enter_now().expect("permit");
            let waiter = scope.spawn(|| gate.try_enter(Duration::from_secs(5)).is_some());
            // Give the waiter a moment to block, then free the permit.
            std::thread::sleep(Duration::from_millis(20));
            drop(held);
            assert!(waiter.join().unwrap(), "waiter must get the freed permit");
        });
        assert_eq!(gate.in_use(), 0);
    }

    #[test]
    fn gate_full_past_budget_is_an_honest_rejection() {
        let gate = Gate::new(1);
        let _held = gate.try_enter_now().expect("permit");
        let start = Instant::now();
        assert!(gate.try_enter(Duration::from_millis(30)).is_none());
        assert!(start.elapsed() >= Duration::from_millis(25), "must have waited the budget");
        assert_eq!(gate.in_use(), 1, "rejection must not leak a permit");
    }

    #[test]
    fn gate_zero_permits_clamps_to_one() {
        let gate = Gate::new(0);
        assert_eq!(gate.permits(), 1);
        assert!(gate.try_enter_now().is_some());
    }

    #[test]
    fn empty_and_singleton_job_lists_are_fine() {
        let none: Vec<fn() -> u8> = Vec::new();
        assert!(run_ordered(8, none).is_empty());
        assert_eq!(run_ordered(8, vec![|| 7u8]), vec![7]);
        let none: Vec<fn() -> u8> = Vec::new();
        assert!(run_adversarial(1, none).is_empty());
        assert_eq!(run_adversarial(1, vec![|| 7u8]), vec![7]);
    }
}
