//! Unrestricted oracle evaluator: `ANSWER(Q, D)` with no access-pattern
//! discipline.
//!
//! This is the ground truth the paper's runtime guarantees are stated
//! against: `ansᵤ ⊆ ANSWER(Q, D)` and (modulo null rows)
//! `ANSWER(Q, D) ⊆ ansₒ`. The oracle reads relations directly from the
//! [`Database`], reorders each disjunct so positives precede negatives
//! (safe queries bind everything positively), and never touches a
//! [`crate::SourceRegistry`].

use crate::error::EngineError;
use crate::instance::Database;
use crate::value::{Tuple, Value};
use lap_ir::{ConjunctiveQuery, Literal, Term, UnionQuery, Var};
use std::collections::{BTreeSet, HashMap};

/// Evaluates a UCQ¬ query over a database with unrestricted access.
/// Requires the query to be safe (errors on unbound negated variables).
pub fn eval_oracle(q: &UnionQuery, db: &Database) -> Result<BTreeSet<Tuple>, EngineError> {
    let mut out = BTreeSet::new();
    for cq in &q.disjuncts {
        eval_oracle_cq(cq, db, &mut out)?;
    }
    Ok(out)
}

/// Evaluates a single CQ¬ over a database with unrestricted access.
pub fn eval_oracle_single(cq: &ConjunctiveQuery, db: &Database) -> Result<BTreeSet<Tuple>, EngineError> {
    let mut out = BTreeSet::new();
    eval_oracle_cq(cq, db, &mut out)?;
    Ok(out)
}

fn eval_oracle_cq(
    cq: &ConjunctiveQuery,
    db: &Database,
    out: &mut BTreeSet<Tuple>,
) -> Result<(), EngineError> {
    // Positives first (in order), then negatives: safety guarantees all
    // negated variables are bound once the positives are processed.
    let ordered: Vec<&Literal> = cq
        .body
        .iter()
        .filter(|l| l.positive)
        .chain(cq.body.iter().filter(|l| !l.positive))
        .collect();
    let mut env: HashMap<Var, Value> = HashMap::new();
    rec(cq, &ordered, 0, db, &mut env, out)
}

fn rec(
    cq: &ConjunctiveQuery,
    body: &[&Literal],
    depth: usize,
    db: &Database,
    env: &mut HashMap<Var, Value>,
    out: &mut BTreeSet<Tuple>,
) -> Result<(), EngineError> {
    let Some(lit) = body.get(depth) else {
        let mut tuple = Vec::with_capacity(cq.head.args.len());
        for &arg in &cq.head.args {
            match arg {
                Term::Const(c) => tuple.push(Value::from(c)),
                Term::Var(v) => match env.get(&v) {
                    Some(&val) => tuple.push(val),
                    None => {
                        return Err(EngineError::NotExecutable {
                            literal: cq.head.to_string(),
                            reason: format!("unsafe query: head variable {v} unbound"),
                        })
                    }
                },
            }
        }
        out.insert(tuple);
        return Ok(());
    };
    let atom = &lit.atom;
    if lit.positive {
        let Some(rel) = db.relation(atom.predicate.name) else {
            return Ok(()); // empty relation: conjunct fails
        };
        'rows: for row in rel.iter() {
            if row.len() != atom.args.len() {
                return Err(EngineError::ArityMismatch {
                    expected: atom.args.len(),
                    found: row.len(),
                });
            }
            let mut bound_here: Vec<Var> = Vec::new();
            for (&arg, &val) in atom.args.iter().zip(row.iter()) {
                match arg {
                    Term::Const(c) => {
                        if Value::from(c) != val {
                            for v in bound_here.drain(..) {
                                env.remove(&v);
                            }
                            continue 'rows;
                        }
                    }
                    Term::Var(v) => match env.get(&v) {
                        Some(&prev) if prev != val => {
                            for v in bound_here.drain(..) {
                                env.remove(&v);
                            }
                            continue 'rows;
                        }
                        Some(_) => {}
                        None => {
                            env.insert(v, val);
                            bound_here.push(v);
                        }
                    },
                }
            }
            rec(cq, body, depth + 1, db, env, out)?;
            for v in bound_here {
                env.remove(&v);
            }
        }
        Ok(())
    } else {
        let mut values = Vec::with_capacity(atom.args.len());
        for &arg in &atom.args {
            match arg {
                Term::Const(c) => values.push(Value::from(c)),
                Term::Var(v) => match env.get(&v) {
                    Some(&val) => values.push(val),
                    None => {
                        return Err(EngineError::UnboundNegation {
                            literal: lit.to_string(),
                        })
                    }
                },
            }
        }
        let present = db
            .relation(atom.predicate.name)
            .is_some_and(|rel| rel.contains(&values));
        if !present {
            rec(cq, body, depth + 1, db, env, out)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lap_ir::{parse_cq, parse_query};

    fn db() -> Database {
        Database::from_facts(
            r#"
            B(1, "tolkien", "lotr"). B(2, "tolkien", "hobbit"). B(3, "adams", "hhgttg").
            C(1, "tolkien"). C(3, "adams").
            L(1).
            "#,
        )
        .unwrap()
    }

    #[test]
    fn example_1_semantics() {
        let q = parse_query("Q(i, a, t) :- B(i, a, t), C(i, a), not L(i).").unwrap();
        let rows = eval_oracle(&q, &db()).unwrap();
        assert_eq!(
            rows.into_iter().collect::<Vec<_>>(),
            vec![vec![Value::int(3), Value::str("adams"), Value::str("hhgttg")]]
        );
    }

    #[test]
    fn oracle_ignores_literal_order() {
        // The oracle reorders internally, so negation-first works.
        let q = parse_query("Q(i, a, t) :- not L(i), B(i, a, t), C(i, a).").unwrap();
        let rows = eval_oracle(&q, &db()).unwrap();
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn union_unions() {
        let q = parse_query("Q(i) :- L(i).\nQ(i) :- C(i, a).").unwrap();
        let rows = eval_oracle(&q, &db()).unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn missing_relation_is_empty() {
        let q = parse_query("Q(x) :- Zeta(x).").unwrap();
        assert!(eval_oracle(&q, &db()).unwrap().is_empty());
    }

    #[test]
    fn negation_over_missing_relation_passes() {
        let q = parse_query("Q(i) :- L(i), not Zeta(i).").unwrap();
        assert_eq!(eval_oracle(&q, &db()).unwrap().len(), 1);
    }

    #[test]
    fn unsafe_query_is_an_error() {
        let q = parse_query("Q(x) :- L(i), not Z(x, i).").unwrap();
        assert!(eval_oracle(&q, &db()).is_err());
    }

    #[test]
    fn single_cq_entry_point() {
        let cq = parse_cq("Q(a) :- C(i, a).").unwrap();
        assert_eq!(eval_oracle_single(&cq, &db()).unwrap().len(), 2);
    }

    #[test]
    fn false_query_yields_nothing() {
        let q = parse_query("Q(x) :- false.").unwrap();
        assert!(eval_oracle(&q, &db()).unwrap().is_empty());
    }
}
