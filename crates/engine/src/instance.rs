//! Database instances (sets of relations) and a ground-fact loader.

use crate::error::EngineError;
use crate::relation::Relation;
use crate::value::{Tuple, Value};
use lap_ir::{parse_literal, Symbol, Term};
use std::collections::BTreeMap;

/// A database instance `D`: a relation per name.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Database {
    relations: BTreeMap<Symbol, Relation>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Gets a relation, if present.
    pub fn relation(&self, name: Symbol) -> Option<&Relation> {
        self.relations.get(&name)
    }

    /// Gets (creating if absent) the relation `name` with the given arity.
    /// Errors if the relation exists with a different arity.
    pub fn relation_mut(&mut self, name: Symbol, arity: usize) -> Result<&mut Relation, EngineError> {
        let rel = self
            .relations
            .entry(name)
            .or_insert_with(|| Relation::new(arity));
        if rel.arity() != arity {
            return Err(EngineError::ArityMismatch {
                expected: rel.arity(),
                found: arity,
            });
        }
        Ok(rel)
    }

    /// Inserts one fact.
    pub fn insert(&mut self, name: &str, tuple: Tuple) -> Result<(), EngineError> {
        let sym = Symbol::intern(name);
        let arity = tuple.len();
        self.relation_mut(sym, arity)?.insert(tuple)
    }

    /// Loads facts from text, one ground atom per `.`-terminated statement:
    ///
    /// ```
    /// use lap_engine::Database;
    /// let db = Database::from_facts(
    ///     r#"B(1, "tolkien", "lotr"). B(2, "tolkien", "hobbit"). L(1)."#,
    /// )
    /// .unwrap();
    /// assert_eq!(db.relation(lap_ir::Symbol::intern("B")).unwrap().len(), 2);
    /// ```
    pub fn from_facts(text: &str) -> Result<Database, EngineError> {
        let mut db = Database::new();
        for stmt in split_statements(text) {
            let stmt = stmt.trim();
            if stmt.is_empty() {
                continue;
            }
            let lit = parse_literal(stmt).map_err(|e| EngineError::NotGround(e.to_string()))?;
            if !lit.positive {
                return Err(EngineError::NotGround(stmt.to_owned()));
            }
            let mut tuple = Vec::with_capacity(lit.atom.args.len());
            for &arg in &lit.atom.args {
                match arg {
                    Term::Const(c) => tuple.push(Value::from(c)),
                    Term::Var(_) => return Err(EngineError::NotGround(stmt.to_owned())),
                }
            }
            db.insert(lit.atom.predicate.name.as_str(), tuple)?;
        }
        Ok(db)
    }

    /// Iterates over `(name, relation)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &Relation)> {
        self.relations.iter().map(|(&s, r)| (s, r))
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }
}

/// Splits fact text into `.`-terminated statements, respecting quoted
/// strings (a `.`, `%`, or `#` inside `"…"` is data, not syntax) and
/// stripping `%`/`#` line comments.
fn split_statements(text: &str) -> Vec<String> {
    let mut statements = Vec::new();
    let mut current = String::new();
    let mut chars = text.chars().peekable();
    let mut in_string = false;
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                in_string = !in_string;
                current.push(c);
            }
            '\\' if in_string => {
                current.push(c);
                if let Some(&next) = chars.peek() {
                    current.push(next);
                    chars.next();
                }
            }
            '.' if !in_string => {
                statements.push(std::mem::take(&mut current));
            }
            '%' | '#' if !in_string => {
                for next in chars.by_ref() {
                    if next == '\n' {
                        break;
                    }
                }
            }
            _ => current.push(c),
        }
    }
    if !current.trim().is_empty() {
        statements.push(current);
    }
    statements
}

impl std::fmt::Display for Database {
    /// Dumps the instance as ground facts, parseable by
    /// [`Database::from_facts`] (string values are re-quoted).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (name, rel) in self.iter() {
            for row in rel.iter() {
                write!(f, "{name}(")?;
                for (i, v) in row.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    match v {
                        Value::Str(s) => write!(f, "{:?}", s.as_str())?,
                        other => write!(f, "{other}")?,
                    }
                }
                writeln!(f, ").")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_ground_facts() {
        let db = Database::from_facts(
            r#"
            % the bookstore
            B(1, "tolkien", "lotr").
            B(2, "tolkien", "hobbit").
            L(1).
            "#,
        )
        .unwrap();
        assert_eq!(db.total_tuples(), 3);
        let b = db.relation(Symbol::intern("B")).unwrap();
        assert!(b.contains(&[Value::int(1), Value::str("tolkien"), Value::str("lotr")]));
    }

    #[test]
    fn rejects_non_ground_facts() {
        assert!(matches!(
            Database::from_facts("B(x, 1)."),
            Err(EngineError::NotGround(_))
        ));
    }

    #[test]
    fn rejects_negated_facts() {
        assert!(matches!(
            Database::from_facts("not B(1, 2)."),
            Err(EngineError::NotGround(_))
        ));
    }

    #[test]
    fn rejects_arity_drift() {
        assert!(Database::from_facts("R(1). R(1, 2).").is_err());
    }

    #[test]
    fn display_round_trips() {
        let db = Database::from_facts(
            r#"B(1, "tolkien", "the lord"). B(-2, "x y", "q\"z"). L(1)."#,
        )
        .unwrap();
        let dumped = db.to_string();
        let reloaded = Database::from_facts(&dumped).unwrap();
        assert_eq!(db, reloaded, "dump:\n{dumped}");
    }

    #[test]
    fn dots_and_comment_chars_inside_strings_survive() {
        let db = Database::from_facts(
            r#"
            B(1, "J.R.R. Tolkien", "100% wool #knit").  % trailing comment
            B(2, "esc \" quote", "a").
            "#,
        )
        .unwrap();
        assert_eq!(db.total_tuples(), 2);
        let b = db.relation(Symbol::intern("B")).unwrap();
        assert!(b.contains(&[
            Value::int(1),
            Value::str("J.R.R. Tolkien"),
            Value::str("100% wool #knit")
        ]));
        // And the dump round-trips.
        let reloaded = Database::from_facts(&db.to_string()).unwrap();
        assert_eq!(db, reloaded);
    }

    #[test]
    fn insert_api() {
        let mut db = Database::new();
        db.insert("S", vec![Value::int(7)]).unwrap();
        db.insert("S", vec![Value::int(7)]).unwrap(); // dup ok
        assert_eq!(db.total_tuples(), 1);
    }
}
