//! Deterministic fault injection and retry policies for source calls.
//!
//! Real access-limited sources are remote services: calls time out, error
//! transiently, and arrive late. [`FaultInjectingSource`] wraps any
//! [`Source`] with a `lap-prng`-seeded fault schedule — same seed and call
//! sequence, same faults, bit for bit — so chaos runs are replayable in
//! tests and benchmarks. All time is *virtual* (milliseconds accounted,
//! never slept), which keeps the chaos suite fast and deterministic.
//!
//! [`RetryPolicy`] governs how the [`crate::SourceRegistry`] reacts to a
//! fault: capped exponential backoff with jitter up to a maximum attempt
//! count, under an optional per-query deadline budget of virtual time.
//! Exhausted retries surface as [`crate::EngineError::SourceUnavailable`],
//! which the degraded executors translate into a dropped disjunct and an
//! honest completeness downgrade instead of an aborted run.

use crate::source::{PlannedFetch, Source};
use crate::value::{Tuple, Value};
use lap_ir::{AccessPattern, Symbol};
use lap_prng::StdRng;
use std::fmt;

/// One successful transport response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SourceReply {
    /// The rows matching the supplied input slots.
    pub rows: Vec<Tuple>,
    /// Virtual latency the call took (0 for in-memory sources).
    pub latency_ms: u64,
}

/// A failed transport call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SourceFault {
    /// The source errored outright (connection refused, 5xx, …).
    Unavailable {
        /// Virtual latency spent before the failure surfaced.
        latency_ms: u64,
    },
    /// The call's injected latency exceeded the per-call timeout.
    Timeout {
        /// The virtual latency the call would have taken.
        latency_ms: u64,
        /// The per-call budget it blew through.
        timeout_ms: u64,
    },
}

impl SourceFault {
    /// Virtual milliseconds the faulted call consumed (for a timeout, the
    /// caller gives up at the budget, not the full latency).
    pub fn latency_ms(&self) -> u64 {
        match *self {
            SourceFault::Unavailable { latency_ms } => latency_ms,
            SourceFault::Timeout { timeout_ms, .. } => timeout_ms,
        }
    }
}

impl fmt::Display for SourceFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SourceFault::Unavailable { latency_ms } => {
                write!(f, "source unavailable after {latency_ms}ms")
            }
            SourceFault::Timeout { latency_ms, timeout_ms } => {
                write!(f, "call timed out ({latency_ms}ms > {timeout_ms}ms budget)")
            }
        }
    }
}

/// Configuration of a [`FaultInjectingSource`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultConfig {
    /// Probability in `[0, 1]` that a call fails outright.
    pub error_rate: f64,
    /// Base virtual latency injected into every call, in milliseconds.
    pub latency_ms: u64,
    /// Extra uniform latency jitter in `0..=latency_jitter_ms`.
    pub latency_jitter_ms: u64,
    /// Per-call timeout: a call whose injected latency exceeds this faults
    /// with [`SourceFault::Timeout`]. `None` disables timeouts.
    pub timeout_ms: Option<u64>,
    /// PRNG seed; the fault schedule is a pure function of the seed and
    /// the call sequence.
    pub seed: u64,
}

impl FaultConfig {
    /// Pure error-rate faults: no latency, no timeouts.
    pub fn with_rate(error_rate: f64, seed: u64) -> FaultConfig {
        FaultConfig {
            error_rate,
            latency_ms: 0,
            latency_jitter_ms: 0,
            timeout_ms: None,
            seed,
        }
    }

    /// The same fault profile under an independent stream: the seed is
    /// mixed with `salt` (SplitMix64 finalizer) so per-disjunct workers
    /// draw uncorrelated but reproducible schedules.
    pub fn derive(&self, salt: u64) -> FaultConfig {
        let mut z = self
            .seed
            .wrapping_add(salt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        FaultConfig { seed: z ^ (z >> 31), ..*self }
    }

    /// JSON encoding for journal metadata (informational: a replay serves
    /// recorded transport results and never re-injects faults). The seed
    /// is written as a string so full 64-bit seeds survive the `f64`
    /// number space.
    pub fn to_json(&self) -> lap_obs::Json {
        use lap_obs::Json;
        Json::obj([
            ("error_rate", Json::Num(self.error_rate)),
            ("latency_ms", Json::num(self.latency_ms)),
            ("latency_jitter_ms", Json::num(self.latency_jitter_ms)),
            (
                "timeout_ms",
                match self.timeout_ms {
                    Some(t) => Json::num(t),
                    None => Json::Null,
                },
            ),
            ("seed", Json::Str(self.seed.to_string())),
        ])
    }
}

/// A [`Source`] decorator injecting deterministic faults and latency.
///
/// Per call it draws, in fixed order, the latency jitter (when configured)
/// and the failure coin from its own [`StdRng`]. The inner source is only
/// consulted when the call survives both, so a faulted call never leaks
/// partial rows — the soundness argument for degraded answers rests on
/// this.
pub struct FaultInjectingSource<S> {
    inner: S,
    cfg: FaultConfig,
    rng: StdRng,
    injected: u64,
}

impl<S: Source> FaultInjectingSource<S> {
    /// Wraps `inner` under fault configuration `cfg`.
    pub fn new(inner: S, cfg: FaultConfig) -> FaultInjectingSource<S> {
        FaultInjectingSource {
            inner,
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
            injected: 0,
        }
    }

    /// Number of faults injected so far.
    pub fn injected_faults(&self) -> u64 {
        self.injected
    }
}

impl<S: Source> Source for FaultInjectingSource<S> {
    fn fetch(
        &mut self,
        name: Symbol,
        pattern: AccessPattern,
        inputs: &[Option<Value>],
    ) -> Result<SourceReply, SourceFault> {
        // Route through the plan so the RNG draw sequence has exactly one
        // definition — serial fetches and overlapped planning consume the
        // schedule identically, bit for bit.
        match self.plan_fetch(name, pattern, inputs) {
            PlannedFetch::Fault(fault) => Err(fault),
            PlannedFetch::Defer { latency_ms } => {
                // The plan already consumed every draw down the decorator
                // stack, so the data phase must use the draw-free path.
                let mut reply = self.fetch_deferred(name, pattern, inputs)?;
                reply.latency_ms += latency_ms;
                Ok(reply)
            }
            PlannedFetch::Ready(result) => result,
        }
    }

    fn plan_fetch(
        &mut self,
        name: Symbol,
        pattern: AccessPattern,
        inputs: &[Option<Value>],
    ) -> PlannedFetch {
        let jitter = if self.cfg.latency_jitter_ms > 0 {
            self.rng.gen_range(0..=self.cfg.latency_jitter_ms)
        } else {
            0
        };
        let latency = self.cfg.latency_ms + jitter;
        if self.cfg.error_rate > 0.0 && self.rng.gen_bool(self.cfg.error_rate) {
            self.injected += 1;
            return PlannedFetch::Fault(SourceFault::Unavailable { latency_ms: latency });
        }
        if let Some(timeout_ms) = self.cfg.timeout_ms {
            if latency > timeout_ms {
                self.injected += 1;
                return PlannedFetch::Fault(SourceFault::Timeout { latency_ms: latency, timeout_ms });
            }
        }
        // The call survived every fault draw: whether the inner transfer
        // can be deferred to a worker is the inner source's decision.
        match self.inner.plan_fetch(name, pattern, inputs) {
            PlannedFetch::Defer { latency_ms } => PlannedFetch::Defer {
                latency_ms: latency_ms + latency,
            },
            PlannedFetch::Fault(fault) => PlannedFetch::Fault(fault),
            PlannedFetch::Ready(result) => PlannedFetch::Ready(result.map(|mut reply| {
                reply.latency_ms += latency;
                reply
            })),
        }
    }

    fn fetch_deferred(
        &mut self,
        name: Symbol,
        pattern: AccessPattern,
        inputs: &[Option<Value>],
    ) -> Result<SourceReply, SourceFault> {
        // The fault draws already happened in `plan_fetch`; only the row
        // transfer remains (the planned latency is added by the caller).
        self.inner.fetch_deferred(name, pattern, inputs)
    }
}

/// Retry policy for faulted source fetches: capped exponential backoff
/// with jitter, bounded by an attempt count and an optional per-query
/// deadline budget of virtual time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per call, including the first (≥ 1; 1 = no retry).
    pub max_attempts: u32,
    /// Backoff before attempt 2, doubled per subsequent attempt.
    pub base_backoff_ms: u64,
    /// Cap on a single backoff interval.
    pub max_backoff_ms: u64,
    /// Jitter as a fraction of the backoff interval, in `[0, 1]`.
    pub jitter: f64,
    /// Per-query budget of virtual milliseconds (latency + backoff); once
    /// exceeded the call gives up even with attempts left.
    pub deadline_ms: Option<u64>,
}

impl Default for RetryPolicy {
    /// The legacy behaviour: one attempt, no backoff, no deadline.
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_backoff_ms: 0,
            max_backoff_ms: 0,
            jitter: 0.0,
            deadline_ms: None,
        }
    }
}

impl RetryPolicy {
    /// A sensible production-ish default: 4 attempts, 10ms base backoff
    /// doubling up to 1s, 20% jitter, no deadline.
    pub fn standard() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_ms: 10,
            max_backoff_ms: 1_000,
            jitter: 0.2,
            deadline_ms: None,
        }
    }

    /// Same policy with a different attempt budget (clamped to ≥ 1).
    pub fn with_max_attempts(mut self, max_attempts: u32) -> RetryPolicy {
        self.max_attempts = max_attempts.max(1);
        self
    }

    /// Same policy under a per-query deadline budget.
    pub fn with_deadline_ms(mut self, deadline_ms: u64) -> RetryPolicy {
        self.deadline_ms = Some(deadline_ms);
        self
    }

    /// JSON encoding, carried in journal metadata so a replay can rebuild
    /// the exact retry behaviour of the recorded run.
    pub fn to_json(&self) -> lap_obs::Json {
        use lap_obs::Json;
        Json::obj([
            ("max_attempts", Json::num(u64::from(self.max_attempts))),
            ("base_backoff_ms", Json::num(self.base_backoff_ms)),
            ("max_backoff_ms", Json::num(self.max_backoff_ms)),
            ("jitter", Json::Num(self.jitter)),
            (
                "deadline_ms",
                match self.deadline_ms {
                    Some(d) => Json::num(d),
                    None => Json::Null,
                },
            ),
        ])
    }

    /// Inverse of [`RetryPolicy::to_json`].
    pub fn from_json(doc: &lap_obs::Json) -> Result<RetryPolicy, String> {
        use lap_obs::Json;
        let number = |key: &str| {
            doc.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("retry policy missing numeric {key:?}"))
        };
        Ok(RetryPolicy {
            max_attempts: number("max_attempts")? as u32,
            base_backoff_ms: number("base_backoff_ms")?,
            max_backoff_ms: number("max_backoff_ms")?,
            jitter: doc
                .get("jitter")
                .and_then(Json::as_f64)
                .ok_or("retry policy missing numeric \"jitter\"")?,
            deadline_ms: match doc.get("deadline_ms") {
                None | Some(Json::Null) => None,
                Some(d) => Some(d.as_u64().ok_or("non-numeric \"deadline_ms\"")?),
            },
        })
    }

    /// The backoff interval after `completed_attempts` failed attempts
    /// (≥ 1): exponential in the attempt number, capped, plus jitter.
    pub fn backoff_ms(&self, completed_attempts: u32, rng: &mut StdRng) -> u64 {
        if self.base_backoff_ms == 0 {
            return 0;
        }
        let exp = completed_attempts.saturating_sub(1).min(20);
        let raw = self.base_backoff_ms.saturating_mul(1u64 << exp);
        let capped = raw.min(self.max_backoff_ms.max(self.base_backoff_ms));
        let jitter = (capped as f64 * self.jitter.clamp(0.0, 1.0) * rng.next_f64()) as u64;
        capped + jitter
    }
}

/// Everything the resilient evaluation paths need: an optional fault
/// profile for the transport and the retry policy above it.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ResilienceConfig {
    /// Fault injection for the transport; `None` leaves the source as-is.
    pub fault: Option<FaultConfig>,
    /// Retry policy for faulted fetches.
    pub retry: RetryPolicy,
}

impl ResilienceConfig {
    /// Chaos at `error_rate` under `seed` with the standard retry policy.
    pub fn chaos(error_rate: f64, seed: u64) -> ResilienceConfig {
        ResilienceConfig {
            fault: Some(FaultConfig::with_rate(error_rate, seed)),
            retry: RetryPolicy::standard(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Database;
    use crate::source::{InMemorySource, SourceRegistry};
    use crate::EngineError;
    use lap_ir::Schema;

    fn setup() -> (Database, Schema) {
        let db = Database::from_facts("R(1, 10). R(2, 20). R(3, 30).").unwrap();
        let schema = Schema::from_patterns(&[("R", "oo"), ("R", "io")]).unwrap();
        (db, schema)
    }

    fn scan(reg: &mut SourceRegistry<'_>) -> Result<usize, EngineError> {
        let p = AccessPattern::parse("oo").unwrap();
        reg.call(Symbol::intern("R"), p, &[None, None]).map(|r| r.len())
    }

    #[test]
    fn zero_rate_injects_nothing_and_adds_no_retries() {
        let (db, schema) = setup();
        let mut reg = SourceRegistry::new(&db, &schema)
            .with_fault_injection(FaultConfig::with_rate(0.0, 7))
            .with_retry(RetryPolicy::standard());
        for _ in 0..100 {
            assert_eq!(scan(&mut reg).unwrap(), 3);
        }
        assert_eq!(reg.failures_observed(), 0);
        assert_eq!(reg.retries_observed(), 0);
        assert_eq!(reg.stats().calls, 100);
    }

    #[test]
    fn fault_schedule_is_deterministic_per_seed() {
        let (db, schema) = setup();
        let run = |seed: u64| -> Vec<bool> {
            let mut src = FaultInjectingSource::new(
                InMemorySource::new(&db),
                FaultConfig::with_rate(0.3, seed),
            );
            let p = AccessPattern::parse("oo").unwrap();
            (0..64)
                .map(|_| src.fetch(Symbol::intern("R"), p, &[None, None]).is_err())
                .collect()
        };
        let _ = &schema;
        assert_eq!(run(42), run(42), "same seed, same schedule");
        assert_ne!(run(42), run(43), "different seeds diverge");
    }

    #[test]
    fn retries_recover_from_transient_faults() {
        let (db, schema) = setup();
        // With p = 0.5 and 6 attempts, a given call fails outright with
        // probability 1/64; 40 calls virtually always succeed somewhere.
        let mut reg = SourceRegistry::new(&db, &schema)
            .with_fault_injection(FaultConfig::with_rate(0.5, 11))
            .with_retry(RetryPolicy::standard().with_max_attempts(6));
        let mut recovered = 0u64;
        for _ in 0..40 {
            if scan(&mut reg).is_ok() {
                recovered += 1;
            }
        }
        assert!(recovered >= 35, "only {recovered}/40 calls survived");
        assert!(reg.retries_observed() > 0, "p=0.5 must have forced retries");
        assert_eq!(
            reg.failures_observed(),
            reg.retries_observed() + (40 - recovered),
            "every fault is either retried or terminal"
        );
    }

    #[test]
    fn exhausted_retries_surface_as_source_unavailable() {
        let (db, schema) = setup();
        let mut reg = SourceRegistry::new(&db, &schema)
            .with_fault_injection(FaultConfig::with_rate(1.0, 3))
            .with_retry(RetryPolicy::standard().with_max_attempts(3));
        let err = scan(&mut reg).unwrap_err();
        match err {
            EngineError::SourceUnavailable { relation, attempts, .. } => {
                assert_eq!(relation, "R");
                assert_eq!(attempts, 3);
            }
            other => panic!("expected SourceUnavailable, got {other}"),
        }
        assert_eq!(reg.failures_observed(), 3);
        assert_eq!(reg.retries_observed(), 2);
    }

    #[test]
    fn latency_beyond_timeout_faults_and_clock_advances() {
        let (db, schema) = setup();
        let cfg = FaultConfig {
            error_rate: 0.0,
            latency_ms: 50,
            latency_jitter_ms: 0,
            timeout_ms: Some(20),
            seed: 5,
        };
        let mut reg = SourceRegistry::new(&db, &schema).with_fault_injection(cfg);
        let err = scan(&mut reg).unwrap_err();
        assert!(err.to_string().contains("timed out"), "{err}");
        // The caller gives up at the timeout budget, not the full latency.
        assert_eq!(reg.virtual_elapsed_ms(), 20);
        // reset_clock restarts the deadline window only; the lifetime total
        // keeps accumulating across phases so reporting never loses time.
        reg.reset_clock();
        assert_eq!(reg.virtual_elapsed_ms(), 20);
        let _ = scan(&mut reg);
        assert_eq!(reg.virtual_elapsed_ms(), 40);
    }

    #[test]
    fn deadline_budget_stops_retrying_early() {
        let (db, schema) = setup();
        let cfg = FaultConfig {
            error_rate: 1.0,
            latency_ms: 30,
            latency_jitter_ms: 0,
            timeout_ms: None,
            seed: 9,
        };
        let mut reg = SourceRegistry::new(&db, &schema)
            .with_fault_injection(cfg)
            .with_retry(RetryPolicy::standard().with_max_attempts(100).with_deadline_ms(50));
        let err = scan(&mut reg).unwrap_err();
        match err {
            EngineError::SourceUnavailable { attempts, reason, .. } => {
                assert!(attempts < 100, "deadline must beat the attempt budget");
                assert!(reason.contains("deadline"), "{reason}");
            }
            other => panic!("expected SourceUnavailable, got {other}"),
        }
        assert!(reg.virtual_elapsed_ms() >= 50);
    }

    #[test]
    fn backoff_is_exponential_capped_and_jittered() {
        let p = RetryPolicy {
            max_attempts: 8,
            base_backoff_ms: 10,
            max_backoff_ms: 100,
            jitter: 0.0,
            deadline_ms: None,
        };
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(p.backoff_ms(1, &mut rng), 10);
        assert_eq!(p.backoff_ms(2, &mut rng), 20);
        assert_eq!(p.backoff_ms(3, &mut rng), 40);
        assert_eq!(p.backoff_ms(5, &mut rng), 100, "capped at max_backoff_ms");
        let jittered = RetryPolicy { jitter: 1.0, ..p };
        let b = jittered.backoff_ms(3, &mut rng);
        assert!((40..=80).contains(&b), "jitter adds at most one interval, got {b}");
    }

    #[test]
    fn retry_policy_json_round_trips() {
        for policy in [
            RetryPolicy::default(),
            RetryPolicy::standard(),
            RetryPolicy::standard().with_max_attempts(7).with_deadline_ms(123),
        ] {
            let doc = policy.to_json();
            let text = doc.to_compact();
            let back = RetryPolicy::from_json(&lap_obs::json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, policy);
        }
        let seed_doc = FaultConfig::with_rate(0.5, u64::MAX).to_json();
        assert_eq!(
            seed_doc.get("seed").and_then(lap_obs::Json::as_str),
            Some(u64::MAX.to_string().as_str()),
            "seeds survive as strings"
        );
    }

    #[test]
    fn derived_configs_decorrelate_but_stay_deterministic() {
        let base = FaultConfig::with_rate(0.5, 77);
        assert_eq!(base.derive(0), base.derive(0));
        assert_ne!(base.derive(0).seed, base.derive(1).seed);
        assert_ne!(base.derive(0).seed, base.seed);
    }
}
