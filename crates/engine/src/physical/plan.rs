//! The physical plan IR: operator nodes with binding schemas and optional
//! cost annotations.

use crate::value::Value;
use lap_ir::{AccessPattern, Atom, Symbol, Var};
use std::fmt;

/// Where one operator argument position reads its value from.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ArgSource {
    /// A constant from the query text.
    Const(Value),
    /// The binding slot holding the argument variable's value.
    Slot(usize),
}

/// Per-operator cost annotation, in the planner's units (estimated source
/// calls issued by this operator and tuples it transfers). `None` until a
/// cost-annotating lowering fills it in.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OpCost {
    /// Estimated number of source calls this operator issues.
    pub calls: f64,
    /// Estimated number of tuples it transfers from the sources.
    pub tuples: f64,
    /// Estimated number of batch windows the vectorized executor drives
    /// through this operator: incoming bindings over the cost model's
    /// batch width, at least one. Per-batch overheads (group assembly,
    /// build-side setup, memo resets) scale with this, not with tuples —
    /// it is what a width change moves while `calls`/`tuples` stay put.
    pub batches: f64,
}

impl fmt::Display for OpCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "est {:.1} calls, {:.1} tuples, {:.0} batches",
            self.calls, self.tuples, self.batches
        )
    }
}

/// Why lowering could not choose an access pattern for a positive literal.
/// The operator raises the matching error when a non-empty batch reaches
/// it (never at plan time — see the module docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AccessProblem {
    /// The relation is not declared in the schema.
    UnknownRelation,
    /// No declared pattern has all its input slots bound at this point of
    /// the pipeline; the payload lists the positions that *are* bound.
    NoUsablePattern {
        /// Argument positions bound by earlier operators (or constants).
        bound_positions: Vec<usize>,
    },
}

/// A source-calling operator: [`PhysOp::Access`] when it is the leaf of the
/// pipeline (driven by the single unit binding), [`PhysOp::BindJoin`] when
/// it joins each incoming binding against the source.
#[derive(Clone, Debug, PartialEq)]
pub struct AccessOp {
    /// The relation being called.
    pub relation: Symbol,
    /// The access pattern chosen at lowering time (the most selective
    /// usable one, as the legacy evaluator chose per tuple).
    pub pattern: Option<AccessPattern>,
    /// Set iff `pattern` is `None`: the error to raise when reached.
    pub problem: Option<AccessProblem>,
    /// One entry per argument position of the atom.
    pub args: Vec<ArgSource>,
    /// The literal rendered with its pattern adornment when chosen
    /// (`B^ioo(i, a, t)`), plain otherwise.
    pub literal: String,
    /// The binding schema after this operator: variables bound so far, in
    /// slot order.
    pub bound_after: Vec<Var>,
    /// Optional planner cost annotation.
    pub cost: Option<OpCost>,
    /// Optional calibrated cost annotation (journal-fed model), shown next
    /// to the static estimate so `explain` explains *why* a plan changed.
    pub calibrated: Option<OpCost>,
}

/// A negated literal acting as a membership filter: it "can only filter
/// out answers, but cannot produce any new variable bindings" (Example 1).
#[derive(Clone, Debug, PartialEq)]
pub struct NegOp {
    /// The relation probed.
    pub relation: Symbol,
    /// One entry per argument position of the atom.
    pub args: Vec<ArgSource>,
    /// Variables of the literal not bound by earlier operators. Non-empty
    /// means the operator raises `UnboundNegation` when reached.
    pub unbound: Vec<Var>,
    /// The literal rendered plain (`not L(i)` — membership probes have no
    /// single adornment).
    pub literal: String,
    /// The binding schema after this operator (same as before it).
    pub bound_after: Vec<Var>,
    /// Optional planner cost annotation.
    pub cost: Option<OpCost>,
    /// Optional calibrated cost annotation (journal-fed model).
    pub calibrated: Option<OpCost>,
}

/// One head column of a [`ProjectOp`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ProjCol {
    /// A constant in the head.
    Const(Value),
    /// A head variable bound by the body: read its slot.
    Slot(usize),
    /// A head variable declared null (overestimate plans' `x = null`).
    Null,
    /// A head variable neither bound nor declared null: raising an error
    /// when a binding reaches the projection.
    Unbound(Var),
}

/// The root of every pipeline: projects surviving bindings onto the head,
/// emitting [`Value::Null`] for declared null variables.
#[derive(Clone, Debug, PartialEq)]
pub struct ProjectOp {
    /// The head atom, rendered (`Q(i, a, t)`).
    pub head: String,
    /// One entry per head argument position.
    pub cols: Vec<ProjCol>,
    /// Optional planner cost annotation.
    pub cost: Option<OpCost>,
    /// Optional calibrated cost annotation (journal-fed model).
    pub calibrated: Option<OpCost>,
}

/// One operator of a physical pipeline.
#[derive(Clone, Debug, PartialEq)]
pub enum PhysOp {
    /// Leaf source call (no incoming bindings beyond the unit binding).
    Access(AccessOp),
    /// Source call joined against each incoming binding.
    BindJoin(AccessOp),
    /// Negation as a batched membership filter.
    NegFilter(NegOp),
    /// Head projection (always the last operator).
    Project(ProjectOp),
}

impl PhysOp {
    /// The operator kind, as printed.
    pub fn kind(&self) -> &'static str {
        match self {
            PhysOp::Access(_) => "Access",
            PhysOp::BindJoin(_) => "BindJoin",
            PhysOp::NegFilter(_) => "NegFilter",
            PhysOp::Project(_) => "Project",
        }
    }

    /// `"<kind> <literal>"`, e.g. `BindJoin B^ioo(i, a, t)`.
    pub fn label(&self) -> String {
        match self {
            PhysOp::Access(a) | PhysOp::BindJoin(a) => format!("{} {}", self.kind(), a.literal),
            PhysOp::NegFilter(n) => format!("{} {}", self.kind(), n.literal),
            PhysOp::Project(p) => format!("{} {}", self.kind(), p.head),
        }
    }

    /// The cost annotation, if a cost-annotating lowering filled it in.
    pub fn cost(&self) -> Option<OpCost> {
        match self {
            PhysOp::Access(a) | PhysOp::BindJoin(a) => a.cost,
            PhysOp::NegFilter(n) => n.cost,
            PhysOp::Project(p) => p.cost,
        }
    }

    /// Mutable access to the cost annotation (for annotating passes).
    pub fn cost_mut(&mut self) -> &mut Option<OpCost> {
        match self {
            PhysOp::Access(a) | PhysOp::BindJoin(a) => &mut a.cost,
            PhysOp::NegFilter(n) => &mut n.cost,
            PhysOp::Project(p) => &mut p.cost,
        }
    }

    /// The calibrated cost annotation, if a feedback-fed lowering filled
    /// it in.
    pub fn calibrated(&self) -> Option<OpCost> {
        match self {
            PhysOp::Access(a) | PhysOp::BindJoin(a) => a.calibrated,
            PhysOp::NegFilter(n) => n.calibrated,
            PhysOp::Project(p) => p.calibrated,
        }
    }

    /// Mutable access to the calibrated cost annotation.
    pub fn calibrated_mut(&mut self) -> &mut Option<OpCost> {
        match self {
            PhysOp::Access(a) | PhysOp::BindJoin(a) => &mut a.calibrated,
            PhysOp::NegFilter(n) => &mut n.calibrated,
            PhysOp::Project(p) => &mut p.calibrated,
        }
    }

    /// The binding schema after this operator (bound variables in slot
    /// order; the projection reports no bindings).
    pub fn bound_after(&self) -> &[Var] {
        match self {
            PhysOp::Access(a) | PhysOp::BindJoin(a) => &a.bound_after,
            PhysOp::NegFilter(n) => &n.bound_after,
            PhysOp::Project(_) => &[],
        }
    }
}

/// One disjunct lowered to a pipeline of operators. `ops` is in pipeline
/// (execution) order: sources first, [`PhysOp::Project`] always last. The
/// printed tree shows the same pipeline root-first.
#[derive(Clone, Debug, PartialEq)]
pub struct PhysicalPlan {
    /// The head atom.
    pub head: Atom,
    /// The slot table: slot `i` holds the value of variable `slots[i]`.
    pub slots: Vec<Var>,
    /// The operators, in pipeline order, ending with the projection.
    pub ops: Vec<PhysOp>,
}

impl fmt::Display for PhysicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (depth, op) in self.ops.iter().rev().enumerate() {
            if depth > 0 {
                for _ in 0..depth - 1 {
                    write!(f, "   ")?;
                }
                write!(f, "└─ ")?;
            }
            write!(f, "{}", op.label())?;
            let bound = op.bound_after();
            if !bound.is_empty() {
                let names: Vec<String> = bound.iter().map(|v| v.to_string()).collect();
                write!(f, "  [bound: {}]", names.join(", "))?;
            }
            match (op.cost(), op.calibrated()) {
                (Some(cost), Some(cal)) => write!(
                    f,
                    "  ({cost}; cal {:.1} calls, {:.1} tuples)",
                    cal.calls, cal.tuples
                )?,
                (Some(cost), None) => write!(f, "  ({cost})")?,
                (None, Some(cal)) => {
                    write!(f, "  (cal {:.1} calls, {:.1} tuples)", cal.calls, cal.tuples)?
                }
                (None, None) => {}
            }
            if depth + 1 < self.ops.len() {
                writeln!(f)?;
            }
        }
        Ok(())
    }
}

/// A union of physical pipelines, sharing a head. `head` is `None` only
/// for unions lowered from an empty part list with no known head.
#[derive(Clone, Debug, PartialEq)]
pub struct PhysicalUnion {
    /// The shared head atom, when known.
    pub head: Option<Atom>,
    /// The disjunct pipelines.
    pub parts: Vec<PhysicalPlan>,
}

impl PhysicalUnion {
    /// True iff the union has no disjuncts (the plan `false`).
    pub fn is_false(&self) -> bool {
        self.parts.is_empty()
    }
}

impl fmt::Display for PhysicalUnion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let head = self
            .head
            .as_ref()
            .map(|h| h.to_string())
            .unwrap_or_else(|| "?".to_owned());
        write!(f, "Union {head} [{} branch(es)]", self.parts.len())?;
        if self.parts.is_empty() {
            write!(f, " — false")?;
        }
        for (i, part) in self.parts.iter().enumerate() {
            writeln!(f)?;
            writeln!(f, "branch {i}:")?;
            let text = part.to_string();
            for (j, line) in text.lines().enumerate() {
                if j > 0 {
                    writeln!(f)?;
                }
                write!(f, "  {line}")?;
            }
        }
        Ok(())
    }
}
