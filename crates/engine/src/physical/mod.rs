//! Physical plans: an explicit operator tree between PLAN\* output and the
//! sources.
//!
//! The paper treats an executable query *as* its plan ("execute each rule
//! separately … from left to right", Section 3), and for a long time this
//! repo did too: `(ConjunctiveQuery, Vec<Var>)` pairs interpreted by a
//! recursive tuple-at-a-time evaluator. This module materializes the plan
//! as data instead:
//!
//! * [`PhysicalPlan`] — one disjunct lowered to a pipeline of operators
//!   ([`PhysOp::Access`], [`PhysOp::BindJoin`], [`PhysOp::NegFilter`],
//!   [`PhysOp::Project`]), each carrying its binding schema and an optional
//!   [`OpCost`] annotation;
//! * [`PhysicalUnion`] — the union over disjunct pipelines;
//! * [`lower_cq`] / [`lower_union`] — the lowering pass, which picks each
//!   literal's access pattern *at plan time* (boundness at a literal is
//!   fully determined by the literals before it, so the per-tuple choice
//!   the old evaluator made was always the same choice);
//! * [`execute_physical_cq`] / [`execute_physical_union`] — a batched
//!   pull-based executor that flows batches of bindings through the
//!   pipeline and deduplicates repeated source calls within a batch.
//!
//! Lowering never fails: a literal with no usable pattern (or an unknown
//! relation, or an unbound negation) lowers to an operator that raises the
//! corresponding [`crate::EngineError`] **when a non-empty batch reaches
//! it** — exactly the legacy evaluator's "error only when reached"
//! semantics, on which ANSWER\* relies (a broken literal behind an empty
//! prefix contributes an empty disjunct, not a failure).

mod column;
mod exec;
mod lower;
mod plan;

pub use column::{Code, CodeHasher, CodeMap, CodeSet, ColumnBatch, Dictionary};
pub use exec::{
    execute_physical_cq, execute_physical_cq_profiled, execute_physical_union,
    execute_physical_union_degraded, execute_physical_union_parallel,
    execute_physical_union_parallel_degraded, execute_physical_union_parallel_obs,
    execute_physical_union_profiled, DisjunctDegradation, ExecConfig, OpProfile, PlanProfile,
    UnionProfile, MAX_BATCH_WIDTH,
};
pub use lower::{lower_cq, lower_union};
pub use plan::{
    AccessOp, AccessProblem, ArgSource, NegOp, OpCost, PhysOp, PhysicalPlan, PhysicalUnion,
    ProjCol, ProjectOp,
};
