//! Lowering: from ordered logical plans (`(ConjunctiveQuery, Vec<Var>)`
//! pairs, as produced by PLAN\*) to physical operator pipelines.
//!
//! The pass walks the body once, tracking which variables are bound by the
//! operators emitted so far, and chooses each positive literal's access
//! pattern with the same "most selective usable" rule the legacy evaluator
//! applied per tuple. Boundness at a literal depends only on the literals
//! before it, so the plan-time choice coincides with every per-tuple
//! choice — the lowered plan is call-for-call equivalent.
//!
//! The same fact gives the columnar executor its layout invariant:
//! `bound_after` grows monotonically along the pipeline and holds for
//! *every* binding that reaches an operator, so a
//! [`ColumnBatch`](super::ColumnBatch) column is either present for all
//! rows or absent for all rows — boundness is per position, never per
//! cell.
//!
//! Lowering is total: problems (unknown relation, no usable pattern,
//! unbound negation, unbound head variable) are recorded in the operator
//! and raised by the executor only when a non-empty batch reaches it.

use super::plan::{
    AccessOp, AccessProblem, ArgSource, NegOp, PhysOp, PhysicalPlan, PhysicalUnion, ProjCol,
    ProjectOp,
};
use crate::value::Value;
use lap_ir::{display_adorned, ConjunctiveQuery, Schema, Term, Var};
use std::collections::{HashMap, HashSet};

/// Lowers one ordered disjunct (plus its null-variable list) to a physical
/// pipeline. Never fails; see the module docs.
pub fn lower_cq(cq: &ConjunctiveQuery, null_vars: &[Var], schema: &Schema) -> PhysicalPlan {
    let mut slots: Vec<Var> = Vec::new();
    let mut slot_of: HashMap<Var, usize> = HashMap::new();
    let mut slot = |v: Var, slots: &mut Vec<Var>| -> usize {
        *slot_of.entry(v).or_insert_with(|| {
            slots.push(v);
            slots.len() - 1
        })
    };
    let mut bound: HashSet<Var> = HashSet::new();
    let mut ops: Vec<PhysOp> = Vec::with_capacity(cq.body.len() + 1);

    for lit in &cq.body {
        let atom = &lit.atom;
        let name = atom.predicate.name;
        let args: Vec<ArgSource> = atom
            .args
            .iter()
            .map(|&t| match t {
                Term::Const(c) => ArgSource::Const(Value::from(c)),
                Term::Var(v) => ArgSource::Slot(slot(v, &mut slots)),
            })
            .collect();
        if lit.positive {
            let arg_bound = |j: usize| match atom.args[j] {
                Term::Const(_) => true,
                Term::Var(v) => bound.contains(&v),
            };
            let (pattern, problem) = match schema.relation(name) {
                None => (None, Some(AccessProblem::UnknownRelation)),
                Some(decl) => match decl.usable_pattern(arg_bound) {
                    Some(p) => (Some(p), None),
                    None => (
                        None,
                        Some(AccessProblem::NoUsablePattern {
                            bound_positions: (0..atom.args.len()).filter(|&j| arg_bound(j)).collect(),
                        }),
                    ),
                },
            };
            bound.extend(lit.vars());
            let op = AccessOp {
                relation: name,
                pattern,
                problem,
                args,
                literal: display_adorned(lit, pattern),
                bound_after: bound_in_slot_order(&slots, &bound),
                cost: None,
                calibrated: None,
            };
            if ops.is_empty() {
                ops.push(PhysOp::Access(op));
            } else {
                ops.push(PhysOp::BindJoin(op));
            }
        } else {
            let mut unbound: Vec<Var> = Vec::new();
            for v in lit.vars() {
                if !bound.contains(&v) && !unbound.contains(&v) {
                    unbound.push(v);
                }
            }
            bound.extend(lit.vars());
            ops.push(PhysOp::NegFilter(NegOp {
                relation: name,
                args,
                unbound,
                literal: lit.to_string(),
                bound_after: bound_in_slot_order(&slots, &bound),
                cost: None,
                calibrated: None,
            }));
        }
    }

    let cols: Vec<ProjCol> = cq
        .head
        .args
        .iter()
        .map(|&t| match t {
            Term::Const(c) => ProjCol::Const(Value::from(c)),
            Term::Var(v) => {
                if bound.contains(&v) {
                    ProjCol::Slot(slot(v, &mut slots))
                } else if null_vars.contains(&v) {
                    ProjCol::Null
                } else {
                    ProjCol::Unbound(v)
                }
            }
        })
        .collect();
    ops.push(PhysOp::Project(ProjectOp {
        head: cq.head.to_string(),
        cols,
        cost: None,
        calibrated: None,
    }));

    PhysicalPlan {
        head: cq.head.clone(),
        slots,
        ops,
    }
}

fn bound_in_slot_order(slots: &[Var], bound: &HashSet<Var>) -> Vec<Var> {
    slots.iter().copied().filter(|v| bound.contains(v)).collect()
}

/// Lowers a union of ordered disjunct plans. The union head is taken from
/// the first part (callers that know the head — e.g. `UnionPlan` — may
/// overwrite it, which matters only for empty unions).
pub fn lower_union(parts: &[(ConjunctiveQuery, Vec<Var>)], schema: &Schema) -> PhysicalUnion {
    PhysicalUnion {
        head: parts.first().map(|(cq, _)| cq.head.clone()),
        parts: parts
            .iter()
            .map(|(cq, null_vars)| lower_cq(cq, null_vars, schema))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lap_ir::parse_cq;

    fn schema() -> Schema {
        Schema::from_patterns(&[("B", "ioo"), ("B", "oio"), ("C", "oo"), ("L", "o")]).unwrap()
    }

    #[test]
    fn patterns_are_chosen_at_plan_time() {
        let cq = parse_cq("Q(i, a, t) :- C(i, a), B(i, a, t), not L(i).").unwrap();
        let plan = lower_cq(&cq, &[], &schema());
        assert_eq!(plan.ops.len(), 4);
        let PhysOp::Access(c) = &plan.ops[0] else { panic!("{:?}", plan.ops[0]) };
        assert_eq!(c.pattern.unwrap().to_string(), "oo");
        // With i and a bound, both B patterns are usable; the tie resolves
        // exactly as the legacy per-tuple `usable_pattern` call resolved it.
        let PhysOp::BindJoin(b) = &plan.ops[1] else { panic!("{:?}", plan.ops[1]) };
        assert_eq!(b.pattern.unwrap().to_string(), "oio");
        assert_eq!(b.literal, "B^oio(i, a, t)");
        // …and the binding schema accumulates in slot order.
        assert_eq!(
            b.bound_after.iter().map(|v| v.to_string()).collect::<Vec<_>>(),
            vec!["i", "a", "t"]
        );
        let PhysOp::NegFilter(n) = &plan.ops[2] else { panic!("{:?}", plan.ops[2]) };
        assert!(n.unbound.is_empty());
        assert_eq!(n.literal, "not L(i)");
        assert!(matches!(plan.ops[3], PhysOp::Project(_)));
    }

    #[test]
    fn boundness_is_uniform_along_the_pipeline() {
        // The columnar layout stores one column per *bound* slot with no
        // per-cell optionality; that is sound because `bound_after` only
        // ever grows along the pipeline (plan-time boundness covers every
        // row that reaches the operator).
        let cq =
            parse_cq("Q(i, a, t) :- C(i, a), B(i, a, t), not L(i), C(i, b).").unwrap();
        let plan = lower_cq(&cq, &[], &schema());
        let mut prev: Vec<lap_ir::Var> = Vec::new();
        // The projection reports no binding schema of its own — walk the
        // pipeline stages.
        for op in &plan.ops[..plan.ops.len() - 1] {
            let after = op.bound_after();
            assert!(
                prev.iter().all(|v| after.contains(v)),
                "{:?} shrank to {:?}",
                prev,
                after
            );
            prev = after.to_vec();
        }
        assert_eq!(prev.len(), plan.slots.len(), "all slots bound at the end");
    }

    #[test]
    fn unexecutable_order_lowers_to_an_error_node() {
        let cq = parse_cq("Q(i, a, t) :- B(i, a, t), C(i, a), not L(i).").unwrap();
        let plan = lower_cq(&cq, &[], &schema());
        let PhysOp::Access(b) = &plan.ops[0] else { panic!("{:?}", plan.ops[0]) };
        assert!(b.pattern.is_none());
        assert_eq!(
            b.problem,
            Some(AccessProblem::NoUsablePattern { bound_positions: vec![] })
        );
        // No adornment when no pattern was chosen (the legacy error text
        // names the plain literal).
        assert_eq!(b.literal, "B(i, a, t)");
    }

    #[test]
    fn null_and_unbound_head_vars_lower_to_columns() {
        let cq = parse_cq("Q(i, t) :- C(i, a).").unwrap();
        let plan = lower_cq(&cq, &[Var::new("t")], &schema());
        let PhysOp::Project(p) = plan.ops.last().unwrap() else { panic!() };
        assert!(matches!(p.cols[0], ProjCol::Slot(_)));
        assert!(matches!(p.cols[1], ProjCol::Null));
        let plan = lower_cq(&cq, &[], &schema());
        let PhysOp::Project(p) = plan.ops.last().unwrap() else { panic!() };
        assert!(matches!(p.cols[1], ProjCol::Unbound(_)));
    }

    #[test]
    fn repeated_variable_in_one_atom_counts_as_unbound_for_the_pattern() {
        // R(x, x) with R^oo and R^io declared: at call time nothing is
        // bound, so only the free scan is usable (matching the legacy
        // per-tuple choice); the second x filters client-side.
        let schema = Schema::from_patterns(&[("R", "oo"), ("R", "io")]).unwrap();
        let cq = parse_cq("Q(x) :- R(x, x).").unwrap();
        let plan = lower_cq(&cq, &[], &schema);
        let PhysOp::Access(r) = &plan.ops[0] else { panic!() };
        assert_eq!(r.pattern.unwrap().to_string(), "oo");
        assert_eq!(r.args[0], r.args[1]);
    }

    #[test]
    fn display_renders_the_tree_root_first() {
        let cq = parse_cq("Q(i, a, t) :- C(i, a), B(i, a, t), not L(i).").unwrap();
        let plan = lower_cq(&cq, &[], &schema());
        let text = plan.to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("Project Q(i, a, t)"), "{text}");
        assert!(lines[1].contains("NegFilter not L(i)"), "{text}");
        assert!(lines[2].contains("BindJoin B^oio(i, a, t)"), "{text}");
        assert!(lines[3].contains("Access C^oo(i, a)"), "{text}");
        assert!(lines[3].contains("[bound: i, a]"), "{text}");
    }

    #[test]
    fn union_head_comes_from_the_first_part() {
        let p1 = parse_cq("Q(i) :- C(i, a).").unwrap();
        let u = lower_union(&[(p1, vec![])], &schema());
        assert_eq!(u.head.unwrap().to_string(), "Q(i)");
        assert!(lower_union(&[], &schema()).is_false());
    }
}
