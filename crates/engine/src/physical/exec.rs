//! The batched pull-based executor for physical plans.
//!
//! Each pipeline operator is a stage with an output buffer; pulling on the
//! last stage drives the whole pipeline. Batches of bindings flow upward,
//! at most `batch_size` (live) rows per pull. Within one batch a
//! source-calling operator groups rows by their input key and issues
//! **one** call per distinct key, and a negation filter memoizes
//! membership probes — the set-at-a-time win over the retired
//! tuple-at-a-time recursion. Answers are identical; only the number of
//! duplicate wire calls changes (and deterministically so: the sequential
//! and parallel evaluators dedup the same way and report equal
//! [`CallStats`]).
//!
//! Two executors share this stage machinery and produce **identical wire
//! traffic** (same calls, same probes, same journal batch events):
//!
//! * the **columnar** executor (the default): bindings flow as
//!   [`ColumnBatch`]es of dictionary-interned `u32` codes with selection
//!   vectors, operators are vectorized (hash-partitioned bind-join build
//!   sides, branch-free negation filters, code-level answer dedup) — see
//!   [`super::column`];
//! * the **row** executor (`ExecConfig::rows()`): the PR 3
//!   `Vec<Option<Value>>`-per-binding implementation, kept as the
//!   differential test baseline.
//!
//! Error semantics are the legacy evaluator's: an operator lowered with a
//! problem (no usable pattern, unknown relation, unbound negation, unbound
//! head variable) raises its error only when a non-empty batch reaches it.

use super::column::{Code, CodeMap, CodeSet, ColumnBatch, Dictionary};
use super::plan::{AccessOp, AccessProblem, ArgSource, NegOp, PhysOp, PhysicalPlan, PhysicalUnion, ProjCol};
use crate::error::EngineError;
use crate::instance::Database;
use crate::source::SourceRegistry;
use crate::stats::CallStats;
use crate::value::{Tuple, Value};
use lap_ir::Schema;
use lap_obs::journal::kind as journal_kind;
use lap_obs::Json;
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::fmt;

/// Upper bound on [`ExecConfig::batch_size`] accepted from the CLI
/// (`--batch-width`): wide enough for any realistic dedup window, small
/// enough that a typo cannot ask for a terabyte of selection vectors.
pub const MAX_BATCH_WIDTH: usize = 1 << 20;

/// Executor configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecConfig {
    /// Maximum rows per batch flowing between operators (≥ 1). Width 1
    /// degenerates to tuple-at-a-time; larger widths widen the per-batch
    /// call-dedup window.
    pub batch_size: usize,
    /// Worker lanes for overlapped source I/O (≥ 1). With 1 (the
    /// default) a batch's deduplicated calls go out serially; with more,
    /// their wire waits overlap on the registry's virtual wall clock and
    /// the row transfers run on the [`crate::sched`] pool — answers and
    /// counters stay bit-identical to the serial path.
    pub io_workers: usize,
    /// Use the columnar executor (the default). `false` selects the
    /// row-at-a-time baseline — answers, counters, and journal batch
    /// events are identical; only the in-memory representation (and its
    /// speed) differs. The row executor survives purely as the
    /// differential test baseline.
    pub columnar: bool,
}

impl Default for ExecConfig {
    fn default() -> ExecConfig {
        ExecConfig { batch_size: 1024, io_workers: 1, columnar: true }
    }
}

impl ExecConfig {
    /// A config with the given batch width (clamped to ≥ 1).
    pub fn with_batch_size(batch_size: usize) -> ExecConfig {
        ExecConfig { batch_size: batch_size.max(1), ..ExecConfig::default() }
    }

    /// Same config with `io_workers` worker lanes for overlapped source
    /// I/O (clamped to ≥ 1).
    pub fn with_io_workers(mut self, io_workers: usize) -> ExecConfig {
        self.io_workers = io_workers.max(1);
        self
    }

    /// Same config selecting the row-at-a-time baseline executor instead
    /// of the columnar one (test baseline only).
    pub fn rows(mut self) -> ExecConfig {
        self.columnar = false;
        self
    }

    /// Same config with the executor choice set explicitly.
    pub fn with_columnar(mut self, columnar: bool) -> ExecConfig {
        self.columnar = columnar;
        self
    }
}

/// A binding: one value per plan slot, `None` while unbound.
type Row = Vec<Option<Value>>;

/// Factor at which an operator's observed output cardinality counts as
/// having blown past its planner estimate: ≥ 10× triggers the
/// `exec.estimate.blown` journal marker (the mid-query escape hatch —
/// callers re-lower from calibrated statistics before the next prepared
/// execution).
pub const ESTIMATE_BLOWN_FACTOR: f64 = 10.0;

/// Runtime counters for one operator.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OpProfile {
    /// The operator label (`BindJoin B^ioo(i, a, t)`).
    pub op: String,
    /// Batches processed.
    pub batches: u64,
    /// Bindings that reached the operator ("invoked", in legacy terms).
    pub rows_in: u64,
    /// Bindings it emitted (distinct answers, for the projection).
    pub rows_out: u64,
    /// Source calls issued after in-batch deduplication (membership probes
    /// for a negation filter). Probes are deduplicated over **live** rows
    /// only, and a probe memoized within a batch window is counted once —
    /// dead rows in a partially-filtered batch neither probe nor count, so
    /// `rows_in / calls` rollups stay meaningful.
    pub calls: u64,
    /// Tuples transferred from the sources by those calls.
    pub source_rows: u64,
    /// Dead rows carried past the operator by selection vectors (rows a
    /// filter killed without compacting the batch). Always 0 for the row
    /// executor, which densifies eagerly. `rows_in / (rows_in +
    /// rows_dead)` is the operator's selection-vector fill rate.
    pub rows_dead: u64,
    /// Dictionary interns by this operator that found the value already
    /// present (columnar executor only).
    pub dict_hits: u64,
    /// Dictionary interns by this operator that created a new code
    /// (columnar executor only).
    pub dict_misses: u64,
    /// True once the operator's output cardinality exceeded its static
    /// cost estimate by [`ESTIMATE_BLOWN_FACTOR`] (marker emitted once).
    pub estimate_blown: bool,
}

impl OpProfile {
    /// Selection-vector fill: live rows over physical rows the operator
    /// saw. 1.0 when every carried row was live (or nothing arrived).
    pub fn fill_rate(&self) -> f64 {
        let physical = self.rows_in + self.rows_dead;
        if physical == 0 {
            1.0
        } else {
            self.rows_in as f64 / physical as f64
        }
    }

    /// Dictionary hit rate of this operator's interns, `None` when the
    /// operator interned nothing (row executor, pure filters).
    pub fn dict_hit_rate(&self) -> Option<f64> {
        let total = self.dict_hits + self.dict_misses;
        (total > 0).then(|| self.dict_hits as f64 / total as f64)
    }
}

/// Runtime counters for one disjunct pipeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlanProfile {
    /// The disjunct head (`Q(i, a, t)`).
    pub head: String,
    /// Per-operator counters, in pipeline order.
    pub ops: Vec<OpProfile>,
    /// Answers the pipeline contributed.
    pub answers: u64,
}

/// Runtime counters for a union of pipelines.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnionProfile {
    /// One profile per disjunct.
    pub parts: Vec<PlanProfile>,
}

impl fmt::Display for UnionProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, part) in self.parts.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            writeln!(f, "disjunct {i}: {} — {} answer(s)", part.head, part.answers)?;
            let headers = ["operator", "invoked", "batches", "calls", "rows", "out", "fill%", "dict%"];
            let mut rows: Vec<[String; 8]> = Vec::with_capacity(part.ops.len());
            for op in &part.ops {
                rows.push([
                    op.op.clone(),
                    op.rows_in.to_string(),
                    op.batches.to_string(),
                    op.calls.to_string(),
                    op.source_rows.to_string(),
                    op.rows_out.to_string(),
                    format!("{:.0}", op.fill_rate() * 100.0),
                    op.dict_hit_rate()
                        .map_or_else(|| "-".to_owned(), |r| format!("{:.0}", r * 100.0)),
                ]);
            }
            let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
            for row in &rows {
                for (w, cell) in widths.iter_mut().zip(row.iter()) {
                    *w = (*w).max(cell.len());
                }
            }
            let emit = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
                write!(f, " ")?;
                for (w, cell) in widths.iter().zip(cells.iter()) {
                    write!(f, " {cell:<w$}", w = w)?;
                }
                writeln!(f)
            };
            let header_cells: Vec<String> = headers.iter().map(|s| (*s).to_owned()).collect();
            emit(f, &header_cells)?;
            for row in &rows {
                emit(f, row)?;
            }
        }
        Ok(())
    }
}

/// Pull-based execution state for one pipeline.
struct PlanExec<'p> {
    plan: &'p PhysicalPlan,
    cfg: ExecConfig,
    /// One buffered stage per non-projection operator.
    buffers: Vec<VecDeque<Row>>,
    done: Vec<bool>,
    unit_sent: bool,
    profiles: Vec<OpProfile>,
}

impl<'p> PlanExec<'p> {
    fn new(plan: &'p PhysicalPlan, cfg: ExecConfig) -> PlanExec<'p> {
        let pipeline_len = plan.ops.len().saturating_sub(1);
        PlanExec {
            plan,
            cfg,
            buffers: (0..pipeline_len).map(|_| VecDeque::new()).collect(),
            done: vec![false; pipeline_len],
            unit_sent: false,
            profiles: plan
                .ops
                .iter()
                .map(|op| OpProfile { op: op.label(), ..OpProfile::default() })
                .collect(),
        }
    }

    /// The single unit binding feeding the pipeline leaf — the analogue of
    /// the legacy recursion always entering depth 0 (so depth-0 errors and
    /// empty-body projections fire exactly once).
    fn pull_unit(&mut self) -> Option<Vec<Row>> {
        if self.unit_sent {
            return None;
        }
        self.unit_sent = true;
        Some(vec![vec![None; self.plan.slots.len()]])
    }

    /// Pulls the next batch (≤ `batch_size` rows) out of stage `i`,
    /// driving upstream stages as needed. `None` once the stage is
    /// exhausted.
    fn pull(
        &mut self,
        i: usize,
        reg: &mut SourceRegistry<'_>,
    ) -> Result<Option<Vec<Row>>, EngineError> {
        loop {
            if self.buffers[i].len() >= self.cfg.batch_size || self.done[i] {
                if self.buffers[i].is_empty() {
                    return Ok(None);
                }
                let take = self.cfg.batch_size.min(self.buffers[i].len());
                return Ok(Some(self.buffers[i].drain(..take).collect()));
            }
            let input = if i == 0 { self.pull_unit() } else { self.pull(i - 1, reg)? };
            match input {
                None => self.done[i] = true,
                Some(batch) => self.process(i, &batch, reg)?,
            }
        }
    }

    /// Runs one input batch through stage `i`, buffering its output.
    fn process(
        &mut self,
        i: usize,
        batch: &[Row],
        reg: &mut SourceRegistry<'_>,
    ) -> Result<(), EngineError> {
        let plan = self.plan;
        self.profiles[i].batches += 1;
        self.profiles[i].rows_in += batch.len() as u64;
        let journaled = reg.journal_enabled();
        if journaled {
            reg.journal_emit(
                journal_kind::BATCH_BEGIN,
                Json::obj([
                    ("label", Json::str(self.profiles[i].op.as_str())),
                    ("rows_in", Json::num(batch.len() as u64)),
                ]),
            );
        }
        let mut produced: Vec<Row> = Vec::new();
        let result = match &plan.ops[i] {
            PhysOp::Access(op) | PhysOp::BindJoin(op) => {
                self.run_access(op, batch, reg, i, &mut produced)
            }
            PhysOp::NegFilter(op) => self.run_neg_filter(op, batch, reg, i, &mut produced),
            PhysOp::Project(_) => unreachable!("projection is driven by the executor root"),
        };
        // The close event is emitted even on error so begin/end pairs stay
        // balanced in the journal.
        if journaled {
            reg.journal_emit(
                journal_kind::BATCH_END,
                Json::obj([
                    ("label", Json::str(self.profiles[i].op.as_str())),
                    ("rows_out", Json::num(produced.len() as u64)),
                    ("ok", Json::Bool(result.is_ok())),
                ]),
            );
        }
        result?;
        self.profiles[i].rows_out += produced.len() as u64;
        // Mid-query escape hatch: the first time an operator's cumulative
        // output exceeds its static estimate by ESTIMATE_BLOWN_FACTOR,
        // leave a marker. The current execution keeps running (answers are
        // unaffected by cardinality misestimates); the marker tells the
        // caller to re-lower from calibrated statistics before the next
        // prepared execution.
        if let Some(cost) = plan.ops[i].cost() {
            if !self.profiles[i].estimate_blown
                && self.profiles[i].rows_out as f64 >= ESTIMATE_BLOWN_FACTOR * cost.tuples.max(1.0)
            {
                self.profiles[i].estimate_blown = true;
                reg.note_estimate_blown(
                    &self.profiles[i].op,
                    self.profiles[i].rows_out,
                    cost.tuples,
                );
            }
        }
        self.buffers[i].extend(produced);
        Ok(())
    }

    fn run_access(
        &mut self,
        op: &AccessOp,
        batch: &[Row],
        reg: &mut SourceRegistry<'_>,
        i: usize,
        produced: &mut Vec<Row>,
    ) -> Result<(), EngineError> {
        if let Some(problem) = &op.problem {
            return Err(access_error(op, problem));
        }
        let pattern = op.pattern.expect("problem-free access op has a pattern");
        // In-batch call dedup: one wire call per distinct input key, in
        // first-occurrence order. The batch's calls go out together so
        // the registry can overlap their wire waits (`io_workers > 1`).
        let mut key_index: HashMap<Vec<Option<Value>>, usize> = HashMap::new();
        let mut keys: Vec<Vec<Option<Value>>> = Vec::new();
        let mut row_keys: Vec<usize> = Vec::with_capacity(batch.len());
        for row in batch {
            let inputs: Vec<Option<Value>> = (0..pattern.arity())
                .map(|j| pattern.is_input(j).then(|| resolve(&op.args[j], row)))
                .collect();
            let k = *key_index.entry(inputs.clone()).or_insert_with(|| {
                keys.push(inputs);
                keys.len() - 1
            });
            row_keys.push(k);
        }
        let fetched = reg.call_many(op.relation, pattern, &keys)?;
        self.profiles[i].calls += keys.len() as u64;
        self.profiles[i].source_rows += fetched.iter().map(|rows| rows.len() as u64).sum::<u64>();
        for (row, &k) in batch.iter().zip(&row_keys) {
            for tuple in &fetched[k] {
                if let Some(out) = unify(&op.args, row, tuple) {
                    produced.push(out);
                }
            }
        }
        Ok(())
    }

    fn run_neg_filter(
        &mut self,
        op: &NegOp,
        batch: &[Row],
        reg: &mut SourceRegistry<'_>,
        i: usize,
        produced: &mut Vec<Row>,
    ) -> Result<(), EngineError> {
        if !op.unbound.is_empty() {
            return Err(EngineError::UnboundNegation { literal: op.literal.clone() });
        }
        // In-batch probe memo: one membership test per distinct key.
        let mut memo: HashMap<Vec<Value>, bool> = HashMap::new();
        for row in batch {
            let values: Vec<Value> = op.args.iter().map(|a| resolve(a, row)).collect();
            let present = match memo.get(&values) {
                Some(&p) => p,
                None => {
                    let p = reg.membership_test(op.relation, &values)?;
                    self.profiles[i].calls += 1;
                    memo.insert(values, p);
                    p
                }
            };
            if !present {
                produced.push(row.clone());
            }
        }
        Ok(())
    }
}

fn access_error(op: &AccessOp, problem: &AccessProblem) -> EngineError {
    match problem {
        AccessProblem::UnknownRelation => EngineError::UnknownRelation(op.relation.to_string()),
        AccessProblem::NoUsablePattern { bound_positions } => EngineError::NotExecutable {
            literal: op.literal.clone(),
            reason: format!(
                "no access pattern of {} has all input slots bound (bound positions: {:?})",
                op.relation, bound_positions
            ),
        },
    }
}

/// Reads one argument's value from a row. Only called for positions the
/// lowering proved bound (input slots, negation arguments).
fn resolve(arg: &ArgSource, row: &Row) -> Value {
    match *arg {
        ArgSource::Const(c) => c,
        ArgSource::Slot(s) => row[s].expect("lowering proved this slot bound"),
    }
}

/// Client-side unification of one source tuple against one binding:
/// constants and already-bound slots must agree (this also joins repeated
/// variables), unbound slots get bound. `None` if the tuple is filtered.
fn unify(args: &[ArgSource], row: &Row, tuple: &[Value]) -> Option<Row> {
    let mut out = row.clone();
    for (arg, &val) in args.iter().zip(tuple.iter()) {
        match *arg {
            ArgSource::Const(c) => {
                if c != val {
                    return None;
                }
            }
            ArgSource::Slot(s) => match out[s] {
                Some(prev) if prev != val => return None,
                Some(_) => {}
                None => out[s] = Some(val),
            },
        }
    }
    Some(out)
}

/// Executes one physical pipeline, returning its answer set.
pub fn execute_physical_cq(
    plan: &PhysicalPlan,
    reg: &mut SourceRegistry<'_>,
    cfg: ExecConfig,
) -> Result<BTreeSet<Tuple>, EngineError> {
    execute_physical_cq_profiled(plan, reg, cfg).map(|(rows, _)| rows)
}

/// [`execute_physical_cq`] plus per-operator runtime counters.
pub fn execute_physical_cq_profiled(
    plan: &PhysicalPlan,
    reg: &mut SourceRegistry<'_>,
    cfg: ExecConfig,
) -> Result<(BTreeSet<Tuple>, PlanProfile), EngineError> {
    let mut dict = Dictionary::new();
    execute_cq_shared(plan, reg, cfg, &mut dict)
}

/// One pipeline under a caller-owned dictionary: the union executors pass
/// a shared one so repeated constants across disjuncts intern once. The
/// row baseline ignores the dictionary.
fn execute_cq_shared(
    plan: &PhysicalPlan,
    reg: &mut SourceRegistry<'_>,
    cfg: ExecConfig,
    dict: &mut Dictionary,
) -> Result<(BTreeSet<Tuple>, PlanProfile), EngineError> {
    if cfg.columnar {
        execute_columnar_cq_profiled(plan, reg, cfg, dict)
    } else {
        execute_row_cq_profiled(plan, reg, cfg)
    }
}

/// The row-at-a-time baseline executor (PR 3), kept verbatim behind
/// `ExecConfig::rows()` as the differential oracle for the columnar path.
fn execute_row_cq_profiled(
    plan: &PhysicalPlan,
    reg: &mut SourceRegistry<'_>,
    cfg: ExecConfig,
) -> Result<(BTreeSet<Tuple>, PlanProfile), EngineError> {
    let last = plan.ops.len() - 1;
    let PhysOp::Project(project) = &plan.ops[last] else {
        unreachable!("lowering always ends the pipeline with a projection")
    };
    let mut exec = PlanExec::new(plan, cfg);
    let mut out: BTreeSet<Tuple> = BTreeSet::new();
    loop {
        let batch = if last == 0 { exec.pull_unit() } else { exec.pull(last - 1, reg)? };
        let Some(batch) = batch else { break };
        exec.profiles[last].batches += 1;
        exec.profiles[last].rows_in += batch.len() as u64;
        for row in &batch {
            let mut tuple = Vec::with_capacity(project.cols.len());
            for col in &project.cols {
                match *col {
                    ProjCol::Const(c) => tuple.push(c),
                    ProjCol::Slot(s) => tuple.push(row[s].expect("head slot bound by the body")),
                    ProjCol::Null => tuple.push(Value::Null),
                    ProjCol::Unbound(v) => {
                        return Err(EngineError::NotExecutable {
                            literal: project.head.clone(),
                            reason: format!("head variable {v} is neither bound nor declared null"),
                        })
                    }
                }
            }
            if out.insert(tuple) {
                exec.profiles[last].rows_out += 1;
            }
        }
    }
    let answers = out.len() as u64;
    Ok((out, PlanProfile { head: plan.head.to_string(), ops: exec.profiles, answers }))
}

/// One stage's output queue in the columnar executor: dense or filtered
/// [`ColumnBatch`]es in production order, plus their total live count so
/// group assembly never walks the queue.
struct ColStage {
    out: VecDeque<ColumnBatch>,
    out_live: usize,
}

/// Pull-based execution state for one columnar pipeline. Stage boundaries
/// (and therefore dedup windows, wire calls, and journal batch events) are
/// identical to the row executor's: a stage hands downstream groups of
/// exactly `batch_size` *live* rows (filtered batches ride along sparse,
/// dead rows excluded from the count), assembled by `Rc`-splitting at the
/// width boundary.
struct ColExec<'p> {
    plan: &'p PhysicalPlan,
    cfg: ExecConfig,
    stages: Vec<ColStage>,
    done: Vec<bool>,
    unit_sent: bool,
    profiles: Vec<OpProfile>,
}

/// Where one negation-filter argument reads its probe code from.
enum NegArg {
    Const(Code),
    Slot(usize),
}

/// A code-tuple key for the executor's per-row hash maps. Keys of up to
/// two codes — the overwhelming case for access inputs, membership probes,
/// and projection heads — pack into one machine word: no allocation on
/// insert, one hash mix instead of a length-prefixed slice walk. Every map
/// holds keys of one uniform length, so packed and wide keys never mix.
#[derive(PartialEq, Eq, Hash)]
enum CodeKey {
    Short(u64),
    Wide(Box<[Code]>),
}

#[inline]
fn code_key(codes: &[Code]) -> CodeKey {
    match *codes {
        [] => CodeKey::Short(0),
        [a] => CodeKey::Short(a as u64),
        [a, b] => CodeKey::Short((a as u64) << 32 | b as u64),
        _ => CodeKey::Wide(codes.into()),
    }
}

/// The pre-processed build side of one distinct access key: surviving
/// source tuples as code columns (one per newly-bound slot), hash-
/// partitioned by their codes at the bound-output check positions so a
/// probing row finds its matches with one hash lookup.
struct BuildSide {
    /// `bind_cols[b][t]` — code of surviving tuple `t` at bind position `b`.
    bind_cols: Vec<Vec<Code>>,
    /// Check-position codes → surviving tuple indices, in source order.
    /// Keyed by the empty key when the operator has no check positions
    /// (every surviving tuple matches every row of the key's group).
    partition: CodeMap<CodeKey, Vec<u32>>,
}

impl<'p> ColExec<'p> {
    fn new(plan: &'p PhysicalPlan, cfg: ExecConfig) -> ColExec<'p> {
        let pipeline_len = plan.ops.len().saturating_sub(1);
        ColExec {
            plan,
            cfg,
            stages: (0..pipeline_len)
                .map(|_| ColStage { out: VecDeque::new(), out_live: 0 })
                .collect(),
            done: vec![false; pipeline_len],
            unit_sent: false,
            profiles: plan
                .ops
                .iter()
                .map(|op| OpProfile { op: op.label(), ..OpProfile::default() })
                .collect(),
        }
    }

    /// The single unit batch feeding the pipeline leaf (one live row, no
    /// bound columns) — see [`PlanExec::pull_unit`].
    fn pull_unit(&mut self) -> Option<Vec<ColumnBatch>> {
        if self.unit_sent {
            return None;
        }
        self.unit_sent = true;
        Some(vec![ColumnBatch::unit(self.plan.slots.len())])
    }

    /// Pulls the next group (≤ `batch_size` live rows, exactly
    /// `batch_size` unless the stage is exhausted) out of stage `i`,
    /// driving upstream stages as needed.
    fn pull(
        &mut self,
        i: usize,
        reg: &mut SourceRegistry<'_>,
        dict: &mut Dictionary,
    ) -> Result<Option<Vec<ColumnBatch>>, EngineError> {
        loop {
            if self.stages[i].out_live >= self.cfg.batch_size || self.done[i] {
                if self.stages[i].out_live == 0 {
                    return Ok(None);
                }
                return Ok(Some(self.take_group(i)));
            }
            let input =
                if i == 0 { self.pull_unit() } else { self.pull(i - 1, reg, dict)? };
            match input {
                None => self.done[i] = true,
                Some(group) => self.process(i, &group, reg, dict)?,
            }
        }
    }

    /// Pops exactly `min(batch_size, out_live)` live rows off stage `i`'s
    /// queue, splitting the batch straddling the boundary (an O(columns)
    /// `Rc` split, no row copies).
    fn take_group(&mut self, i: usize) -> Vec<ColumnBatch> {
        let stage = &mut self.stages[i];
        let mut want = self.cfg.batch_size.min(stage.out_live);
        let mut group = Vec::new();
        while want > 0 {
            let front_live =
                stage.out.front().expect("out_live > 0 implies a queued batch").live();
            if front_live <= want {
                stage.out_live -= front_live;
                want -= front_live;
                group.push(stage.out.pop_front().expect("checked front"));
            } else {
                let front =
                    stage.out.front_mut().expect("checked front").split_front(want);
                stage.out_live -= want;
                want = 0;
                group.push(front);
            }
        }
        group
    }

    /// Runs one input group through stage `i`, queueing its output.
    fn process(
        &mut self,
        i: usize,
        group: &[ColumnBatch],
        reg: &mut SourceRegistry<'_>,
        dict: &mut Dictionary,
    ) -> Result<(), EngineError> {
        let plan = self.plan;
        let live: usize = group.iter().map(ColumnBatch::live).sum();
        let dead: usize = group.iter().map(ColumnBatch::dead).sum();
        self.profiles[i].batches += 1;
        self.profiles[i].rows_in += live as u64;
        self.profiles[i].rows_dead += dead as u64;
        let journaled = reg.journal_enabled();
        if journaled {
            reg.journal_emit(
                journal_kind::BATCH_BEGIN,
                Json::obj([
                    ("label", Json::str(self.profiles[i].op.as_str())),
                    ("rows_in", Json::num(live as u64)),
                ]),
            );
        }
        let dict_before = dict.counts();
        let mut produced: Vec<ColumnBatch> = Vec::new();
        let result = match &plan.ops[i] {
            PhysOp::Access(op) | PhysOp::BindJoin(op) => {
                self.run_access_columnar(op, group, reg, dict, i, &mut produced)
            }
            PhysOp::NegFilter(op) => {
                self.run_neg_filter_columnar(op, group, reg, dict, i, &mut produced)
            }
            PhysOp::Project(_) => unreachable!("projection is driven by the executor root"),
        };
        let produced_live: usize = produced.iter().map(ColumnBatch::live).sum();
        if journaled {
            reg.journal_emit(
                journal_kind::BATCH_END,
                Json::obj([
                    ("label", Json::str(self.profiles[i].op.as_str())),
                    ("rows_out", Json::num(produced_live as u64)),
                    ("ok", Json::Bool(result.is_ok())),
                ]),
            );
        }
        result?;
        let (hits, misses) = dict.counts();
        self.profiles[i].dict_hits += hits - dict_before.0;
        self.profiles[i].dict_misses += misses - dict_before.1;
        self.profiles[i].rows_out += produced_live as u64;
        if let Some(cost) = plan.ops[i].cost() {
            if !self.profiles[i].estimate_blown
                && self.profiles[i].rows_out as f64 >= ESTIMATE_BLOWN_FACTOR * cost.tuples.max(1.0)
            {
                self.profiles[i].estimate_blown = true;
                reg.note_estimate_blown(
                    &self.profiles[i].op,
                    self.profiles[i].rows_out,
                    cost.tuples,
                );
            }
        }
        for batch in produced {
            if batch.live() > 0 {
                self.stages[i].out_live += batch.live();
                self.stages[i].out.push_back(batch);
            }
        }
        Ok(())
    }

    /// Vectorized source access / bind join. Per group: distinct input
    /// keys are collected over the live rows (first-occurrence order, like
    /// the row executor) and fetched with one [`SourceRegistry::call_many`];
    /// each key's tuples are then filtered and interned **once** into a
    /// [`BuildSide`] (constant and repeated-variable checks are
    /// key-independent), and every live row probes the hash partition of
    /// its key with its bound-output codes, appending matches column-wise
    /// into a dense output batch.
    fn run_access_columnar(
        &mut self,
        op: &AccessOp,
        group: &[ColumnBatch],
        reg: &mut SourceRegistry<'_>,
        dict: &mut Dictionary,
        i: usize,
        produced: &mut Vec<ColumnBatch>,
    ) -> Result<(), EngineError> {
        if let Some(problem) = &op.problem {
            return Err(access_error(op, problem));
        }
        let pattern = op.pattern.expect("problem-free access op has a pattern");
        let arity = pattern.arity();
        let first = group.first().expect("process only sees non-empty groups");

        // Classify argument positions once per group. Boundness is uniform
        // per pipeline position, so the first batch speaks for all.
        enum KeyPart {
            Const(Code),
            Slot(usize),
        }
        let mut key_parts: Vec<KeyPart> = Vec::new(); // input positions, in order
        let mut key_pos_of_j: Vec<Option<usize>> = vec![None; arity];
        let mut const_checks: Vec<(usize, Value)> = Vec::new(); // tuple[j] == c
        let mut key_checks: Vec<usize> = Vec::new(); // tuple[j] == pushed input j
        let mut probe_parts: Vec<(usize, usize)> = Vec::new(); // (slot, j): bound output
        let mut dup_checks: Vec<(usize, usize)> = Vec::new(); // tuple[j] == tuple[first_j]
        let mut bind_parts: Vec<(usize, usize)> = Vec::new(); // (j, slot): first binding
        for (j, arg) in op.args.iter().enumerate() {
            match *arg {
                ArgSource::Const(c) => {
                    if pattern.is_input(j) {
                        key_pos_of_j[j] = Some(key_parts.len());
                        key_parts.push(KeyPart::Const(dict.intern(c)));
                    }
                    const_checks.push((j, c));
                }
                ArgSource::Slot(s) => {
                    if first.is_bound(s) {
                        if pattern.is_input(j) {
                            key_pos_of_j[j] = Some(key_parts.len());
                            key_parts.push(KeyPart::Slot(s));
                            key_checks.push(j);
                        } else {
                            probe_parts.push((s, j));
                        }
                    } else if let Some(&(fj, _)) =
                        bind_parts.iter().find(|&&(_, bs)| bs == s)
                    {
                        dup_checks.push((j, fj));
                    } else {
                        assert!(
                            !pattern.is_input(j),
                            "lowering proved input slots bound"
                        );
                        bind_parts.push((j, s));
                    }
                }
            }
        }

        // Distinct input keys over the live rows, first-occurrence order.
        let mut key_index: CodeMap<CodeKey, u32> = CodeMap::default();
        let mut wire_keys: Vec<Vec<Option<Value>>> = Vec::new();
        let mut row_key: Vec<u32> = Vec::new();
        let mut scratch: Vec<Code> = Vec::with_capacity(key_parts.len());
        for batch in group {
            let key_cols: Vec<Option<&[Code]>> = key_parts
                .iter()
                .map(|kp| match *kp {
                    KeyPart::Const(_) => None,
                    KeyPart::Slot(s) => Some(batch.col(s).expect("bound slot has a column")),
                })
                .collect();
            for &r in batch.rows() {
                scratch.clear();
                for (kp, col) in key_parts.iter().zip(&key_cols) {
                    scratch.push(match (kp, col) {
                        (KeyPart::Const(c), _) => *c,
                        (KeyPart::Slot(_), Some(col)) => col[r as usize],
                        (KeyPart::Slot(_), None) => unreachable!(),
                    });
                }
                let next = key_index.len() as u32;
                let k = *key_index.entry(code_key(&scratch)).or_insert_with(|| {
                    wire_keys.push(
                        (0..arity)
                            .map(|j| key_pos_of_j[j].map(|p| dict.value(scratch[p])))
                            .collect(),
                    );
                    next
                });
                row_key.push(k);
            }
        }

        let fetched = reg.call_many(op.relation, pattern, &wire_keys)?;
        self.profiles[i].calls += wire_keys.len() as u64;
        self.profiles[i].source_rows +=
            fetched.iter().map(|rows| rows.len() as u64).sum::<u64>();

        // Pre-process each key's tuples once: filter (constants, pushed
        // inputs, repeated new variables), intern, hash-partition.
        let mut builds: Vec<BuildSide> = Vec::with_capacity(fetched.len());
        let mut probe_scratch: Vec<Code> = Vec::with_capacity(probe_parts.len());
        for (k, tuples) in fetched.iter().enumerate() {
            let wire = &wire_keys[k];
            let mut build = BuildSide {
                bind_cols: vec![Vec::new(); bind_parts.len()],
                partition: CodeMap::default(),
            };
            for tuple in tuples {
                if const_checks.iter().any(|&(j, c)| tuple[j] != c) {
                    continue;
                }
                if key_checks
                    .iter()
                    .any(|&j| Some(tuple[j]) != wire[j])
                {
                    continue;
                }
                if dup_checks.iter().any(|&(j, fj)| tuple[j] != tuple[fj]) {
                    continue;
                }
                let t = build.bind_cols.first().map_or(0, Vec::len) as u32;
                for (b, &(j, _)) in bind_parts.iter().enumerate() {
                    build.bind_cols[b].push(dict.intern(tuple[j]));
                }
                probe_scratch.clear();
                for &(_, j) in &probe_parts {
                    probe_scratch.push(dict.intern(tuple[j]));
                }
                build.partition.entry(code_key(&probe_scratch)).or_default().push(t);
                // With no bind positions the tuple index is degenerate but
                // the partition entry still records one match per tuple.
            }
            builds.push(build);
        }

        // Probe: each live row looks up its key's partition with its
        // bound-output codes and appends matches column-wise.
        let carried: Vec<usize> =
            (0..self.plan.slots.len()).filter(|&s| first.is_bound(s)).collect();
        let mut out_carried: Vec<Vec<Code>> = vec![Vec::new(); carried.len()];
        let mut out_bound: Vec<Vec<Code>> = vec![Vec::new(); bind_parts.len()];
        let mut out_len = 0usize;
        let mut cursor = 0usize;
        for batch in group {
            let carried_cols: Vec<&[Code]> = carried
                .iter()
                .map(|&s| batch.col(s).expect("bound slot has a column"))
                .collect();
            let probe_cols: Vec<&[Code]> = probe_parts
                .iter()
                .map(|&(s, _)| batch.col(s).expect("bound slot has a column"))
                .collect();
            for &r in batch.rows() {
                let r = r as usize;
                let build = &builds[row_key[cursor] as usize];
                cursor += 1;
                probe_scratch.clear();
                for col in &probe_cols {
                    probe_scratch.push(col[r]);
                }
                let Some(matches) = build.partition.get(&code_key(&probe_scratch)) else {
                    continue;
                };
                let m = matches.len();
                for (out, col) in out_carried.iter_mut().zip(&carried_cols) {
                    out.extend(std::iter::repeat_n(col[r], m));
                }
                for (b, out) in out_bound.iter_mut().enumerate() {
                    out.extend(matches.iter().map(|&t| build.bind_cols[b][t as usize]));
                }
                out_len += m;
            }
        }

        let mut out_cols: Vec<Option<Vec<Code>>> = vec![None; self.plan.slots.len()];
        for (s, col) in carried.into_iter().zip(out_carried) {
            out_cols[s] = Some(col);
        }
        for (&(_, s), col) in bind_parts.iter().zip(out_bound) {
            out_cols[s] = Some(col);
        }
        produced.push(ColumnBatch::dense(out_cols, out_len));
        Ok(())
    }

    /// Vectorized negation filter: distinct probe keys are collected over
    /// the group's **live** rows only (the per-batch memo of the row
    /// executor, shared across the group's sparse batches so a probe is
    /// never double-counted when a batch is partially dead), resolved with
    /// one batched [`SourceRegistry::membership_test_many`], and the
    /// selection vectors are compacted branch-free — column data never
    /// moves.
    fn run_neg_filter_columnar(
        &mut self,
        op: &NegOp,
        group: &[ColumnBatch],
        reg: &mut SourceRegistry<'_>,
        dict: &mut Dictionary,
        i: usize,
        produced: &mut Vec<ColumnBatch>,
    ) -> Result<(), EngineError> {
        if !op.unbound.is_empty() {
            return Err(EngineError::UnboundNegation { literal: op.literal.clone() });
        }
        let nargs: Vec<NegArg> = op
            .args
            .iter()
            .map(|a| match *a {
                ArgSource::Const(c) => NegArg::Const(dict.intern(c)),
                ArgSource::Slot(s) => NegArg::Slot(s),
            })
            .collect();

        // Pass 1 — distinct probe keys over live rows, first-occurrence
        // order (the batch-window memo).
        let mut key_index: CodeMap<CodeKey, u32> = CodeMap::default();
        let mut distinct: Vec<Vec<Value>> = Vec::new();
        let mut row_key: Vec<u32> = Vec::new();
        let mut scratch: Vec<Code> = Vec::with_capacity(nargs.len());
        for batch in group {
            let arg_cols: Vec<Option<&[Code]>> = nargs
                .iter()
                .map(|a| match *a {
                    NegArg::Const(_) => None,
                    NegArg::Slot(s) => Some(batch.col(s).expect("bound slot has a column")),
                })
                .collect();
            for &r in batch.rows() {
                scratch.clear();
                for (a, col) in nargs.iter().zip(&arg_cols) {
                    scratch.push(match (a, col) {
                        (NegArg::Const(c), _) => *c,
                        (NegArg::Slot(_), Some(col)) => col[r as usize],
                        (NegArg::Slot(_), None) => unreachable!(),
                    });
                }
                let next = distinct.len() as u32;
                let k = *key_index.entry(code_key(&scratch)).or_insert_with(|| {
                    distinct.push(scratch.iter().map(|&c| dict.value(c)).collect());
                    next
                });
                row_key.push(k);
            }
        }

        // Pass 2 — one batched probe per distinct live key. Memoized
        // duplicates and dead rows count zero calls.
        let present = reg.membership_test_many(op.relation, &distinct)?;
        self.profiles[i].calls += distinct.len() as u64;

        // Pass 3 — branch-free selection-vector compaction per batch.
        let mut cursor = 0usize;
        for batch in group {
            let live = batch.live();
            let mut survivors = vec![0u32; live];
            let mut n = 0usize;
            for &r in batch.rows() {
                let keep = !present[row_key[cursor] as usize];
                cursor += 1;
                survivors[n] = r;
                n += usize::from(keep);
            }
            survivors.truncate(n);
            produced.push(batch.with_selection(survivors));
        }
        Ok(())
    }
}

/// The columnar twin of [`execute_row_cq_profiled`]: same stage windows,
/// same wire traffic, same journal events — but bindings flow as
/// dictionary codes and the projection dedups on code tuples, decoding
/// only each distinct answer.
fn execute_columnar_cq_profiled(
    plan: &PhysicalPlan,
    reg: &mut SourceRegistry<'_>,
    cfg: ExecConfig,
    dict: &mut Dictionary,
) -> Result<(BTreeSet<Tuple>, PlanProfile), EngineError> {
    let last = plan.ops.len() - 1;
    let PhysOp::Project(project) = &plan.ops[last] else {
        unreachable!("lowering always ends the pipeline with a projection")
    };
    enum PCol {
        Code(Code),
        Slot(usize),
        Unbound(lap_ir::Var),
    }
    let dict_before = dict.counts();
    let pcols: Vec<PCol> = project
        .cols
        .iter()
        .map(|col| match *col {
            ProjCol::Const(c) => PCol::Code(dict.intern(c)),
            ProjCol::Slot(s) => PCol::Slot(s),
            ProjCol::Null => PCol::Code(dict.intern(Value::Null)),
            ProjCol::Unbound(v) => PCol::Unbound(v),
        })
        .collect();
    let mut exec = ColExec::new(plan, cfg);
    let (hits, misses) = dict.counts();
    exec.profiles[last].dict_hits += hits - dict_before.0;
    exec.profiles[last].dict_misses += misses - dict_before.1;
    let mut out: BTreeSet<Tuple> = BTreeSet::new();
    let mut seen: CodeSet<CodeKey> = CodeSet::default();
    let mut scratch: Vec<Code> = Vec::with_capacity(pcols.len());
    loop {
        let group =
            if last == 0 { exec.pull_unit() } else { exec.pull(last - 1, reg, dict)? };
        let Some(group) = group else { break };
        exec.profiles[last].batches += 1;
        exec.profiles[last].rows_in +=
            group.iter().map(ColumnBatch::live).sum::<usize>() as u64;
        exec.profiles[last].rows_dead +=
            group.iter().map(ColumnBatch::dead).sum::<usize>() as u64;
        for batch in &group {
            let slot_cols: Vec<Option<&[Code]>> = pcols
                .iter()
                .map(|pc| match *pc {
                    PCol::Slot(s) => {
                        Some(batch.col(s).expect("head slot bound by the body"))
                    }
                    _ => None,
                })
                .collect();
            for &r in batch.rows() {
                scratch.clear();
                for (pc, col) in pcols.iter().zip(&slot_cols) {
                    match (pc, col) {
                        (PCol::Code(c), _) => scratch.push(*c),
                        (PCol::Slot(_), Some(col)) => scratch.push(col[r as usize]),
                        (PCol::Slot(_), None) => unreachable!(),
                        (PCol::Unbound(v), _) => {
                            return Err(EngineError::NotExecutable {
                                literal: project.head.clone(),
                                reason: format!(
                                    "head variable {v} is neither bound nor declared null"
                                ),
                            })
                        }
                    }
                }
                if seen.insert(code_key(&scratch)) {
                    let tuple: Tuple = scratch.iter().map(|&c| dict.value(c)).collect();
                    let fresh = out.insert(tuple);
                    debug_assert!(fresh, "code-tuple dedup must agree with value dedup");
                    exec.profiles[last].rows_out += 1;
                }
            }
        }
    }
    let answers = out.len() as u64;
    Ok((out, PlanProfile { head: plan.head.to_string(), ops: exec.profiles, answers }))
}

/// Executes a physical union sequentially, one span per disjunct when the
/// registry's recorder has tracing enabled.
pub fn execute_physical_union(
    union: &PhysicalUnion,
    reg: &mut SourceRegistry<'_>,
    cfg: ExecConfig,
) -> Result<BTreeSet<Tuple>, EngineError> {
    let recorder = reg.recorder().clone();
    let mut dict = Dictionary::new();
    let mut out = BTreeSet::new();
    for (i, plan) in union.parts.iter().enumerate() {
        let _span = recorder.span_lazy(|| format!("disjunct {i}: {}", plan.head));
        out.extend(execute_cq_shared(plan, reg, cfg, &mut dict)?.0);
    }
    Ok(out)
}

/// [`execute_physical_union`] plus per-operator runtime counters for every
/// disjunct.
pub fn execute_physical_union_profiled(
    union: &PhysicalUnion,
    reg: &mut SourceRegistry<'_>,
    cfg: ExecConfig,
) -> Result<(BTreeSet<Tuple>, UnionProfile), EngineError> {
    let recorder = reg.recorder().clone();
    let mut dict = Dictionary::new();
    let mut out = BTreeSet::new();
    let mut parts = Vec::with_capacity(union.parts.len());
    for (i, plan) in union.parts.iter().enumerate() {
        let _span = recorder.span_lazy(|| format!("disjunct {i}: {}", plan.head));
        let (rows, profile) = execute_cq_shared(plan, reg, cfg, &mut dict)?;
        out.extend(rows);
        parts.push(profile);
    }
    Ok((out, UnionProfile { parts }))
}

/// One disjunct dropped from a degraded evaluation: which pipeline, and
/// the terminal source failure that forced the drop.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct DisjunctDegradation {
    /// Position of the disjunct in the union.
    pub index: usize,
    /// The disjunct head (`Q(i, a, t)`).
    pub head: String,
    /// Relation whose source gave up.
    pub relation: String,
    /// Fetch attempts made before giving up.
    pub attempts: u32,
    /// The terminal fault, rendered.
    pub reason: String,
}

impl fmt::Display for DisjunctDegradation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "disjunct {} ({}): source {} unavailable after {} attempt(s): {}",
            self.index, self.head, self.relation, self.attempts, self.reason
        )
    }
}

/// Executes a physical union in degradation mode: a disjunct whose source
/// exhausts its retries ([`EngineError::SourceUnavailable`]) is dropped
/// *whole* — it contributes no rows at all — and reported, while the
/// remaining disjuncts still evaluate. Every drop bumps the
/// `source.degraded` counter on the registry's recorder.
///
/// Soundness: a fault is an error, never an empty answer, so a surviving
/// disjunct returns exactly its fault-free rows and the degraded result is
/// a subset of the fault-free one. Any other error still aborts the run —
/// only source unavailability degrades.
pub fn execute_physical_union_degraded(
    union: &PhysicalUnion,
    reg: &mut SourceRegistry<'_>,
    cfg: ExecConfig,
) -> Result<(BTreeSet<Tuple>, Vec<DisjunctDegradation>), EngineError> {
    let recorder = reg.recorder().clone();
    let degraded = recorder.counter("source.degraded");
    let mut dict = Dictionary::new();
    let mut out = BTreeSet::new();
    let mut dropped = Vec::new();
    for (i, plan) in union.parts.iter().enumerate() {
        let _span = recorder.span_lazy(|| format!("disjunct {i}: {}", plan.head));
        match execute_cq_shared(plan, reg, cfg, &mut dict).map(|(rows, _)| rows) {
            Ok(rows) => out.extend(rows),
            Err(EngineError::SourceUnavailable { relation, attempts, reason }) => {
                degraded.incr();
                let d = DisjunctDegradation {
                    index: i,
                    head: plan.head.to_string(),
                    relation,
                    attempts,
                    reason,
                };
                reg.journal_emit(journal_kind::DISJUNCT_DEGRADED, degradation_json(&d));
                dropped.push(d);
            }
            Err(other) => return Err(other),
        }
    }
    Ok((out, dropped))
}

fn degradation_json(d: &DisjunctDegradation) -> Json {
    Json::obj([
        ("index", Json::num(d.index as u64)),
        ("head", Json::str(d.head.as_str())),
        ("relation", Json::str(d.relation.as_str())),
        ("attempts", Json::num(u64::from(d.attempts))),
        ("reason", Json::str(d.reason.as_str())),
    ])
}

/// Parallel [`execute_physical_union_degraded`]: one worker thread, source
/// registry, and (when `resilience.fault` is set) independently-seeded
/// fault stream per disjunct — worker `i` uses
/// [`crate::FaultConfig::derive`]`(i)`, so the schedule is deterministic
/// regardless of thread interleaving.
pub fn execute_physical_union_parallel_degraded(
    union: &PhysicalUnion,
    db: &Database,
    schema: &Schema,
    recorder: &lap_obs::Recorder,
    cfg: ExecConfig,
    resilience: &crate::ResilienceConfig,
) -> Result<(BTreeSet<Tuple>, CallStats, Vec<DisjunctDegradation>), EngineError> {
    if union.parts.is_empty() {
        return Ok((BTreeSet::new(), CallStats::default(), Vec::new()));
    }
    let _span = recorder.span("eval.parallel");
    let degraded = recorder.counter("source.degraded");
    type WorkerResult =
        Result<(Result<BTreeSet<Tuple>, DisjunctDegradation>, CallStats), EngineError>;
    let results: Vec<WorkerResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = union
            .parts
            .iter()
            .enumerate()
            .map(|(i, plan)| {
                scope.spawn(move || {
                    let mut reg = SourceRegistry::new(db, schema)
                        .recording(recorder)
                        .with_journal_lane(i as u64)
                        .with_io_workers(cfg.io_workers)
                        .with_retry(resilience.retry);
                    if let Some(fault) = &resilience.fault {
                        reg = reg.with_fault_injection(fault.derive(i as u64));
                    }
                    match execute_physical_cq(plan, &mut reg, cfg) {
                        Ok(rows) => Ok((Ok(rows), reg.stats())),
                        Err(EngineError::SourceUnavailable { relation, attempts, reason }) => Ok((
                            Err(DisjunctDegradation {
                                index: i,
                                head: plan.head.to_string(),
                                relation,
                                attempts,
                                reason,
                            }),
                            reg.stats(),
                        )),
                        Err(other) => Err(other),
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread does not panic"))
            .collect()
    });
    let mut out = BTreeSet::new();
    let mut stats = CallStats::default();
    let mut dropped = Vec::new();
    for r in results {
        let (outcome, s) = r?;
        stats.absorb(s);
        match outcome {
            Ok(rows) => out.extend(rows),
            Err(d) => {
                degraded.incr();
                // The drop decision lands on the main thread, which holds no
                // registry — emit through the shared recorder on the
                // degraded worker's lane.
                if let Some(journal) = recorder.journal() {
                    journal.emit(
                        d.index as u64,
                        0,
                        journal_kind::DISJUNCT_DEGRADED,
                        degradation_json(&d),
                    );
                }
                dropped.push(d);
            }
        }
    }
    Ok((out, stats, dropped))
}

/// Executes a physical union with one worker thread (and one source
/// registry) per disjunct, merging answers and call statistics.
pub fn execute_physical_union_parallel(
    union: &PhysicalUnion,
    db: &Database,
    schema: &Schema,
    cfg: ExecConfig,
) -> Result<(BTreeSet<Tuple>, CallStats), EngineError> {
    execute_physical_union_parallel_obs(union, db, schema, &lap_obs::Recorder::disabled(), cfg)
}

/// [`execute_physical_union_parallel`] under `recorder`: the fan-out runs
/// in an `eval.parallel` span and every worker's registry reports to the
/// shared recorder.
pub fn execute_physical_union_parallel_obs(
    union: &PhysicalUnion,
    db: &Database,
    schema: &Schema,
    recorder: &lap_obs::Recorder,
    cfg: ExecConfig,
) -> Result<(BTreeSet<Tuple>, CallStats), EngineError> {
    if union.parts.is_empty() {
        return Ok((BTreeSet::new(), CallStats::default()));
    }
    let _span = recorder.span("eval.parallel");
    let results: Vec<Result<(BTreeSet<Tuple>, CallStats), EngineError>> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = union
                .parts
                .iter()
                .enumerate()
                .map(|(i, plan)| {
                    scope.spawn(move || {
                        let mut reg = SourceRegistry::new(db, schema)
                            .recording(recorder)
                            .with_journal_lane(i as u64)
                            .with_io_workers(cfg.io_workers);
                        let rows = execute_physical_cq(plan, &mut reg, cfg)?;
                        Ok((rows, reg.stats()))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread does not panic"))
                .collect()
        });
    let mut out = BTreeSet::new();
    let mut stats = CallStats::default();
    for r in results {
        let (rows, s) = r?;
        out.extend(rows);
        stats.absorb(s);
    }
    Ok((out, stats))
}

#[cfg(test)]
mod tests {
    use super::super::lower::{lower_cq, lower_union};
    use super::*;
    use lap_ir::parse_cq;

    fn bookstore() -> (Database, Schema) {
        let db = Database::from_facts(
            r#"
            B(1, "tolkien", "lotr"). B(2, "tolkien", "hobbit"). B(3, "adams", "hhgttg").
            C(1, "tolkien"). C(3, "adams"). C(4, "tolkien").
            L(1).
            "#,
        )
        .unwrap();
        let schema =
            Schema::from_patterns(&[("B", "ioo"), ("B", "oio"), ("C", "oo"), ("L", "o")]).unwrap();
        (db, schema)
    }

    fn run(text: &str, nulls: &[&str], batch: usize) -> Result<BTreeSet<Tuple>, EngineError> {
        let (db, schema) = bookstore();
        let null_vars: Vec<lap_ir::Var> = nulls.iter().map(|n| lap_ir::Var::new(n)).collect();
        let plan = lower_cq(&parse_cq(text).unwrap(), &null_vars, &schema);
        let mut reg = SourceRegistry::new(&db, &schema);
        execute_physical_cq(&plan, &mut reg, ExecConfig::with_batch_size(batch))
    }

    #[test]
    fn answers_are_identical_across_batch_widths() {
        let text = "Q(i, a, t) :- C(i, a), B(i, a, t), not L(i).";
        let wide = run(text, &[], 1024).unwrap();
        assert_eq!(run(text, &[], 1).unwrap(), wide);
        assert_eq!(run(text, &[], 2).unwrap(), wide);
        assert_eq!(wide.len(), 1);
    }

    #[test]
    fn duplicate_input_keys_are_deduplicated_within_a_batch() {
        // Two C rows share the author "tolkien"; B^oio is keyed on it, so a
        // wide batch issues one call where the tuple-at-a-time path made
        // two.
        let (db, schema) = bookstore();
        let cq = parse_cq("Q(t) :- C(i, a), B(i2, a, t).").unwrap();
        let plan = lower_cq(&cq, &[], &schema);
        let mut wide = SourceRegistry::new(&db, &schema);
        let rows =
            execute_physical_cq(&plan, &mut wide, ExecConfig::with_batch_size(1024)).unwrap();
        let mut narrow = SourceRegistry::new(&db, &schema);
        let rows1 =
            execute_physical_cq(&plan, &mut narrow, ExecConfig::with_batch_size(1)).unwrap();
        assert_eq!(rows, rows1);
        assert!(wide.stats().calls < narrow.stats().calls, "{:?} vs {:?}", wide.stats(), narrow.stats());
    }

    #[test]
    fn errors_fire_only_when_reached() {
        // The broken literal sits behind an empty prefix: no binding ever
        // reaches it, so the plan evaluates to the empty set (the legacy
        // laziness ANSWER* depends on).
        let rows = run("Q(a) :- C(9, a), Zzz(a, b).", &[], 64);
        assert!(rows.unwrap().is_empty());
        // At depth 0 the unit binding always arrives: hard error.
        let err = run("Q(i, a, t) :- B(i, a, t), C(i, a).", &[], 64).unwrap_err();
        assert!(matches!(err, EngineError::NotExecutable { .. }), "{err}");
    }

    #[test]
    fn profiled_union_counts_operator_traffic() {
        let (db, schema) = bookstore();
        let parts = vec![
            (parse_cq("Q(i, a, t) :- C(i, a), B(i, a, t), not L(i).").unwrap(), vec![]),
        ];
        let union = lower_union(&parts, &schema);
        let mut reg = SourceRegistry::new(&db, &schema);
        let (rows, profile) =
            execute_physical_union_profiled(&union, &mut reg, ExecConfig::default()).unwrap();
        assert_eq!(rows.len(), 1);
        let ops = &profile.parts[0].ops;
        assert_eq!(ops[0].rows_in, 1); // the unit binding
        assert_eq!(ops[0].calls, 1); // one free scan of C
        assert_eq!(ops[1].rows_in, 3); // three C rows reach the join
        assert_eq!(ops[3].rows_out, 1); // one distinct answer
        let text = profile.to_string();
        assert!(text.contains("invoked"), "{text}");
        assert!(text.contains("NegFilter not L(i)"), "{text}");
    }

    #[test]
    fn columnar_and_row_executors_match_answers_and_wire_traffic() {
        // The columnar executor assembles groups of exactly `batch_size`
        // live rows, so its dedup/memo windows — and therefore its wire
        // traffic — must be identical to the row baseline at every width.
        let (db, schema) = bookstore();
        let queries = [
            "Q(i, a, t) :- C(i, a), B(i, a, t), not L(i).",
            "Q(t) :- C(i, a), B(i2, a, t).",
            "Q(t) :- B(1, a, t).",                     // const at an input slot
            "Q(a) :- C(i, a), B(i, a, \"lotr\").",     // const at an output slot
        ];
        for text in queries {
            let plan = lower_cq(&parse_cq(text).unwrap(), &[], &schema);
            for width in [1usize, 2, 3, 1024] {
                let cfg = ExecConfig::with_batch_size(width);
                let mut creg = SourceRegistry::new(&db, &schema);
                let col = execute_physical_cq(&plan, &mut creg, cfg).unwrap();
                let mut rreg = SourceRegistry::new(&db, &schema);
                let row = execute_physical_cq(&plan, &mut rreg, cfg.rows()).unwrap();
                assert_eq!(col, row, "{text} @ width {width}");
                assert_eq!(creg.stats(), rreg.stats(), "{text} @ width {width}");
            }
        }
    }

    #[test]
    fn repeated_variables_filter_source_tuples() {
        // `x` repeats inside B's output slots: only tuples with equal
        // second and third components survive (the columnar dup-check).
        let db = Database::from_facts(
            r#"B(1, "x", "x"). B(1, "x", "y"). B(2, "z", "z"). L(1). L(2)."#,
        )
        .unwrap();
        let schema = Schema::from_patterns(&[("B", "ioo"), ("L", "o")]).unwrap();
        let plan = lower_cq(&parse_cq("Q(i, x) :- L(i), B(i, x, x).").unwrap(), &[], &schema);
        for cfg in [ExecConfig::default(), ExecConfig::default().rows()] {
            let mut reg = SourceRegistry::new(&db, &schema);
            let rows = execute_physical_cq(&plan, &mut reg, cfg).unwrap();
            assert_eq!(rows.len(), 2, "{rows:?}");
        }
    }

    #[test]
    fn memoized_probes_are_not_double_counted_on_partially_dead_batches() {
        // After `not L` kills the middle row, the batch reaching `not M`
        // is partially dead (selection vector < full). The membership memo
        // must count one probe per *distinct live* key — dead rows neither
        // probe nor inflate rows_in.
        let db =
            Database::from_facts(r#"C(1, "a"). C(2, "b"). C(3, "c"). L(2)."#).unwrap();
        let schema =
            Schema::from_patterns(&[("C", "oo"), ("L", "o"), ("M", "o")]).unwrap();
        let plan = lower_cq(
            &parse_cq("Q(i) :- C(i, x), not L(i), not M(i).").unwrap(),
            &[],
            &schema,
        );
        let mut reg = SourceRegistry::new(&db, &schema);
        let (rows, profile) =
            execute_physical_cq_profiled(&plan, &mut reg, ExecConfig::default()).unwrap();
        assert_eq!(rows.len(), 2);
        let m = &profile.ops[2];
        assert!(m.op.contains("not M"), "{}", m.op);
        assert_eq!(m.rows_in, 2, "live rows only");
        assert_eq!(m.rows_dead, 1, "the row `not L` killed rides along");
        assert_eq!(m.calls, 2, "one probe per distinct live key");
        assert!((m.fill_rate() - 2.0 / 3.0).abs() < 1e-9, "{}", m.fill_rate());
        // The filter interns nothing (its only argument is a slot) …
        assert!(m.dict_hit_rate().is_none());
        // … but the access op that materialized C interned every value.
        assert!(profile.ops[0].dict_hit_rate().is_some());
    }

    #[test]
    fn union_disjuncts_share_one_dictionary() {
        let (db, schema) = bookstore();
        let parts = vec![
            (parse_cq("Q(i, a) :- C(i, a).").unwrap(), vec![]),
            (parse_cq("Q(i, a) :- C(i, a), not L(i).").unwrap(), vec![]),
        ];
        let union = lower_union(&parts, &schema);
        let mut reg = SourceRegistry::new(&db, &schema);
        let (_, profile) =
            execute_physical_union_profiled(&union, &mut reg, ExecConfig::default()).unwrap();
        // The second disjunct's access re-interns values the first already
        // interned: its dictionary traffic is all hits, no misses.
        let second_access = &profile.parts[1].ops[0];
        assert!(second_access.dict_hits > 0, "{second_access:?}");
        assert_eq!(second_access.dict_misses, 0, "{second_access:?}");
    }

    #[test]
    fn parallel_union_matches_sequential() {
        let (db, schema) = bookstore();
        let parts = vec![
            (parse_cq("Q(i) :- C(i, a).").unwrap(), vec![]),
            (parse_cq("Q(i) :- L(i).").unwrap(), vec![]),
        ];
        let union = lower_union(&parts, &schema);
        let cfg = ExecConfig::default();
        let mut reg = SourceRegistry::new(&db, &schema);
        let seq = execute_physical_union(&union, &mut reg, cfg).unwrap();
        let (par, stats) = execute_physical_union_parallel(&union, &db, &schema, cfg).unwrap();
        assert_eq!(seq, par);
        assert_eq!(stats.calls, reg.stats().calls);
        assert_eq!(stats.tuples_returned, reg.stats().tuples_returned);
    }
}
