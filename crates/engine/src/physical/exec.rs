//! The batched pull-based executor for physical plans.
//!
//! Each pipeline operator is a stage with an output buffer; pulling on the
//! last stage drives the whole pipeline. Batches of bindings (rows over
//! the plan's slot table) flow upward, at most `batch_size` rows per pull.
//! Within one batch a source-calling operator groups rows by their input
//! key and issues **one** call per distinct key, and a negation filter
//! memoizes membership probes — the set-at-a-time win over the retired
//! tuple-at-a-time recursion. Answers are identical; only the number of
//! duplicate wire calls changes (and deterministically so: the sequential
//! and parallel evaluators dedup the same way and report equal
//! [`CallStats`]).
//!
//! Error semantics are the legacy evaluator's: an operator lowered with a
//! problem (no usable pattern, unknown relation, unbound negation, unbound
//! head variable) raises its error only when a non-empty batch reaches it.

use super::plan::{AccessOp, AccessProblem, ArgSource, NegOp, PhysOp, PhysicalPlan, PhysicalUnion, ProjCol};
use crate::error::EngineError;
use crate::instance::Database;
use crate::source::SourceRegistry;
use crate::stats::CallStats;
use crate::value::{Tuple, Value};
use lap_ir::Schema;
use lap_obs::journal::kind as journal_kind;
use lap_obs::Json;
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::fmt;

/// Executor configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecConfig {
    /// Maximum rows per batch flowing between operators (≥ 1). Width 1
    /// degenerates to tuple-at-a-time; larger widths widen the per-batch
    /// call-dedup window.
    pub batch_size: usize,
    /// Worker lanes for overlapped source I/O (≥ 1). With 1 (the
    /// default) a batch's deduplicated calls go out serially; with more,
    /// their wire waits overlap on the registry's virtual wall clock and
    /// the row transfers run on the [`crate::sched`] pool — answers and
    /// counters stay bit-identical to the serial path.
    pub io_workers: usize,
}

impl Default for ExecConfig {
    fn default() -> ExecConfig {
        ExecConfig { batch_size: 1024, io_workers: 1 }
    }
}

impl ExecConfig {
    /// A config with the given batch width (clamped to ≥ 1).
    pub fn with_batch_size(batch_size: usize) -> ExecConfig {
        ExecConfig { batch_size: batch_size.max(1), io_workers: 1 }
    }

    /// Same config with `io_workers` worker lanes for overlapped source
    /// I/O (clamped to ≥ 1).
    pub fn with_io_workers(mut self, io_workers: usize) -> ExecConfig {
        self.io_workers = io_workers.max(1);
        self
    }
}

/// A binding: one value per plan slot, `None` while unbound.
type Row = Vec<Option<Value>>;

/// Factor at which an operator's observed output cardinality counts as
/// having blown past its planner estimate: ≥ 10× triggers the
/// `exec.estimate.blown` journal marker (the mid-query escape hatch —
/// callers re-lower from calibrated statistics before the next prepared
/// execution).
pub const ESTIMATE_BLOWN_FACTOR: f64 = 10.0;

/// Runtime counters for one operator.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OpProfile {
    /// The operator label (`BindJoin B^ioo(i, a, t)`).
    pub op: String,
    /// Batches processed.
    pub batches: u64,
    /// Bindings that reached the operator ("invoked", in legacy terms).
    pub rows_in: u64,
    /// Bindings it emitted (distinct answers, for the projection).
    pub rows_out: u64,
    /// Source calls issued after in-batch deduplication (membership probes
    /// for a negation filter).
    pub calls: u64,
    /// Tuples transferred from the sources by those calls.
    pub source_rows: u64,
    /// True once the operator's output cardinality exceeded its static
    /// cost estimate by [`ESTIMATE_BLOWN_FACTOR`] (marker emitted once).
    pub estimate_blown: bool,
}

/// Runtime counters for one disjunct pipeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlanProfile {
    /// The disjunct head (`Q(i, a, t)`).
    pub head: String,
    /// Per-operator counters, in pipeline order.
    pub ops: Vec<OpProfile>,
    /// Answers the pipeline contributed.
    pub answers: u64,
}

/// Runtime counters for a union of pipelines.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnionProfile {
    /// One profile per disjunct.
    pub parts: Vec<PlanProfile>,
}

impl fmt::Display for UnionProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, part) in self.parts.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            writeln!(f, "disjunct {i}: {} — {} answer(s)", part.head, part.answers)?;
            let headers = ["operator", "invoked", "batches", "calls", "rows", "out"];
            let mut rows: Vec<[String; 6]> = Vec::with_capacity(part.ops.len());
            for op in &part.ops {
                rows.push([
                    op.op.clone(),
                    op.rows_in.to_string(),
                    op.batches.to_string(),
                    op.calls.to_string(),
                    op.source_rows.to_string(),
                    op.rows_out.to_string(),
                ]);
            }
            let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
            for row in &rows {
                for (w, cell) in widths.iter_mut().zip(row.iter()) {
                    *w = (*w).max(cell.len());
                }
            }
            let emit = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
                write!(f, " ")?;
                for (w, cell) in widths.iter().zip(cells.iter()) {
                    write!(f, " {cell:<w$}", w = w)?;
                }
                writeln!(f)
            };
            let header_cells: Vec<String> = headers.iter().map(|s| (*s).to_owned()).collect();
            emit(f, &header_cells)?;
            for row in &rows {
                emit(f, row)?;
            }
        }
        Ok(())
    }
}

/// Pull-based execution state for one pipeline.
struct PlanExec<'p> {
    plan: &'p PhysicalPlan,
    cfg: ExecConfig,
    /// One buffered stage per non-projection operator.
    buffers: Vec<VecDeque<Row>>,
    done: Vec<bool>,
    unit_sent: bool,
    profiles: Vec<OpProfile>,
}

impl<'p> PlanExec<'p> {
    fn new(plan: &'p PhysicalPlan, cfg: ExecConfig) -> PlanExec<'p> {
        let pipeline_len = plan.ops.len().saturating_sub(1);
        PlanExec {
            plan,
            cfg,
            buffers: (0..pipeline_len).map(|_| VecDeque::new()).collect(),
            done: vec![false; pipeline_len],
            unit_sent: false,
            profiles: plan
                .ops
                .iter()
                .map(|op| OpProfile { op: op.label(), ..OpProfile::default() })
                .collect(),
        }
    }

    /// The single unit binding feeding the pipeline leaf — the analogue of
    /// the legacy recursion always entering depth 0 (so depth-0 errors and
    /// empty-body projections fire exactly once).
    fn pull_unit(&mut self) -> Option<Vec<Row>> {
        if self.unit_sent {
            return None;
        }
        self.unit_sent = true;
        Some(vec![vec![None; self.plan.slots.len()]])
    }

    /// Pulls the next batch (≤ `batch_size` rows) out of stage `i`,
    /// driving upstream stages as needed. `None` once the stage is
    /// exhausted.
    fn pull(
        &mut self,
        i: usize,
        reg: &mut SourceRegistry<'_>,
    ) -> Result<Option<Vec<Row>>, EngineError> {
        loop {
            if self.buffers[i].len() >= self.cfg.batch_size || self.done[i] {
                if self.buffers[i].is_empty() {
                    return Ok(None);
                }
                let take = self.cfg.batch_size.min(self.buffers[i].len());
                return Ok(Some(self.buffers[i].drain(..take).collect()));
            }
            let input = if i == 0 { self.pull_unit() } else { self.pull(i - 1, reg)? };
            match input {
                None => self.done[i] = true,
                Some(batch) => self.process(i, &batch, reg)?,
            }
        }
    }

    /// Runs one input batch through stage `i`, buffering its output.
    fn process(
        &mut self,
        i: usize,
        batch: &[Row],
        reg: &mut SourceRegistry<'_>,
    ) -> Result<(), EngineError> {
        let plan = self.plan;
        self.profiles[i].batches += 1;
        self.profiles[i].rows_in += batch.len() as u64;
        let journaled = reg.journal_enabled();
        if journaled {
            reg.journal_emit(
                journal_kind::BATCH_BEGIN,
                Json::obj([
                    ("label", Json::str(self.profiles[i].op.as_str())),
                    ("rows_in", Json::num(batch.len() as u64)),
                ]),
            );
        }
        let mut produced: Vec<Row> = Vec::new();
        let result = match &plan.ops[i] {
            PhysOp::Access(op) | PhysOp::BindJoin(op) => {
                self.run_access(op, batch, reg, i, &mut produced)
            }
            PhysOp::NegFilter(op) => self.run_neg_filter(op, batch, reg, i, &mut produced),
            PhysOp::Project(_) => unreachable!("projection is driven by the executor root"),
        };
        // The close event is emitted even on error so begin/end pairs stay
        // balanced in the journal.
        if journaled {
            reg.journal_emit(
                journal_kind::BATCH_END,
                Json::obj([
                    ("label", Json::str(self.profiles[i].op.as_str())),
                    ("rows_out", Json::num(produced.len() as u64)),
                    ("ok", Json::Bool(result.is_ok())),
                ]),
            );
        }
        result?;
        self.profiles[i].rows_out += produced.len() as u64;
        // Mid-query escape hatch: the first time an operator's cumulative
        // output exceeds its static estimate by ESTIMATE_BLOWN_FACTOR,
        // leave a marker. The current execution keeps running (answers are
        // unaffected by cardinality misestimates); the marker tells the
        // caller to re-lower from calibrated statistics before the next
        // prepared execution.
        if let Some(cost) = plan.ops[i].cost() {
            if !self.profiles[i].estimate_blown
                && self.profiles[i].rows_out as f64 >= ESTIMATE_BLOWN_FACTOR * cost.tuples.max(1.0)
            {
                self.profiles[i].estimate_blown = true;
                reg.note_estimate_blown(
                    &self.profiles[i].op,
                    self.profiles[i].rows_out,
                    cost.tuples,
                );
            }
        }
        self.buffers[i].extend(produced);
        Ok(())
    }

    fn run_access(
        &mut self,
        op: &AccessOp,
        batch: &[Row],
        reg: &mut SourceRegistry<'_>,
        i: usize,
        produced: &mut Vec<Row>,
    ) -> Result<(), EngineError> {
        if let Some(problem) = &op.problem {
            return Err(access_error(op, problem));
        }
        let pattern = op.pattern.expect("problem-free access op has a pattern");
        // In-batch call dedup: one wire call per distinct input key, in
        // first-occurrence order. The batch's calls go out together so
        // the registry can overlap their wire waits (`io_workers > 1`).
        let mut key_index: HashMap<Vec<Option<Value>>, usize> = HashMap::new();
        let mut keys: Vec<Vec<Option<Value>>> = Vec::new();
        let mut row_keys: Vec<usize> = Vec::with_capacity(batch.len());
        for row in batch {
            let inputs: Vec<Option<Value>> = (0..pattern.arity())
                .map(|j| pattern.is_input(j).then(|| resolve(&op.args[j], row)))
                .collect();
            let k = *key_index.entry(inputs.clone()).or_insert_with(|| {
                keys.push(inputs);
                keys.len() - 1
            });
            row_keys.push(k);
        }
        let fetched = reg.call_many(op.relation, pattern, &keys)?;
        self.profiles[i].calls += keys.len() as u64;
        self.profiles[i].source_rows += fetched.iter().map(|rows| rows.len() as u64).sum::<u64>();
        for (row, &k) in batch.iter().zip(&row_keys) {
            for tuple in &fetched[k] {
                if let Some(out) = unify(&op.args, row, tuple) {
                    produced.push(out);
                }
            }
        }
        Ok(())
    }

    fn run_neg_filter(
        &mut self,
        op: &NegOp,
        batch: &[Row],
        reg: &mut SourceRegistry<'_>,
        i: usize,
        produced: &mut Vec<Row>,
    ) -> Result<(), EngineError> {
        if !op.unbound.is_empty() {
            return Err(EngineError::UnboundNegation { literal: op.literal.clone() });
        }
        // In-batch probe memo: one membership test per distinct key.
        let mut memo: HashMap<Vec<Value>, bool> = HashMap::new();
        for row in batch {
            let values: Vec<Value> = op.args.iter().map(|a| resolve(a, row)).collect();
            let present = match memo.get(&values) {
                Some(&p) => p,
                None => {
                    let p = reg.membership_test(op.relation, &values)?;
                    self.profiles[i].calls += 1;
                    memo.insert(values, p);
                    p
                }
            };
            if !present {
                produced.push(row.clone());
            }
        }
        Ok(())
    }
}

fn access_error(op: &AccessOp, problem: &AccessProblem) -> EngineError {
    match problem {
        AccessProblem::UnknownRelation => EngineError::UnknownRelation(op.relation.to_string()),
        AccessProblem::NoUsablePattern { bound_positions } => EngineError::NotExecutable {
            literal: op.literal.clone(),
            reason: format!(
                "no access pattern of {} has all input slots bound (bound positions: {:?})",
                op.relation, bound_positions
            ),
        },
    }
}

/// Reads one argument's value from a row. Only called for positions the
/// lowering proved bound (input slots, negation arguments).
fn resolve(arg: &ArgSource, row: &Row) -> Value {
    match *arg {
        ArgSource::Const(c) => c,
        ArgSource::Slot(s) => row[s].expect("lowering proved this slot bound"),
    }
}

/// Client-side unification of one source tuple against one binding:
/// constants and already-bound slots must agree (this also joins repeated
/// variables), unbound slots get bound. `None` if the tuple is filtered.
fn unify(args: &[ArgSource], row: &Row, tuple: &[Value]) -> Option<Row> {
    let mut out = row.clone();
    for (arg, &val) in args.iter().zip(tuple.iter()) {
        match *arg {
            ArgSource::Const(c) => {
                if c != val {
                    return None;
                }
            }
            ArgSource::Slot(s) => match out[s] {
                Some(prev) if prev != val => return None,
                Some(_) => {}
                None => out[s] = Some(val),
            },
        }
    }
    Some(out)
}

/// Executes one physical pipeline, returning its answer set.
pub fn execute_physical_cq(
    plan: &PhysicalPlan,
    reg: &mut SourceRegistry<'_>,
    cfg: ExecConfig,
) -> Result<BTreeSet<Tuple>, EngineError> {
    execute_physical_cq_profiled(plan, reg, cfg).map(|(rows, _)| rows)
}

/// [`execute_physical_cq`] plus per-operator runtime counters.
pub fn execute_physical_cq_profiled(
    plan: &PhysicalPlan,
    reg: &mut SourceRegistry<'_>,
    cfg: ExecConfig,
) -> Result<(BTreeSet<Tuple>, PlanProfile), EngineError> {
    let last = plan.ops.len() - 1;
    let PhysOp::Project(project) = &plan.ops[last] else {
        unreachable!("lowering always ends the pipeline with a projection")
    };
    let mut exec = PlanExec::new(plan, cfg);
    let mut out: BTreeSet<Tuple> = BTreeSet::new();
    loop {
        let batch = if last == 0 { exec.pull_unit() } else { exec.pull(last - 1, reg)? };
        let Some(batch) = batch else { break };
        exec.profiles[last].batches += 1;
        exec.profiles[last].rows_in += batch.len() as u64;
        for row in &batch {
            let mut tuple = Vec::with_capacity(project.cols.len());
            for col in &project.cols {
                match *col {
                    ProjCol::Const(c) => tuple.push(c),
                    ProjCol::Slot(s) => tuple.push(row[s].expect("head slot bound by the body")),
                    ProjCol::Null => tuple.push(Value::Null),
                    ProjCol::Unbound(v) => {
                        return Err(EngineError::NotExecutable {
                            literal: project.head.clone(),
                            reason: format!("head variable {v} is neither bound nor declared null"),
                        })
                    }
                }
            }
            if out.insert(tuple) {
                exec.profiles[last].rows_out += 1;
            }
        }
    }
    let answers = out.len() as u64;
    Ok((out, PlanProfile { head: plan.head.to_string(), ops: exec.profiles, answers }))
}

/// Executes a physical union sequentially, one span per disjunct when the
/// registry's recorder has tracing enabled.
pub fn execute_physical_union(
    union: &PhysicalUnion,
    reg: &mut SourceRegistry<'_>,
    cfg: ExecConfig,
) -> Result<BTreeSet<Tuple>, EngineError> {
    let recorder = reg.recorder().clone();
    let mut out = BTreeSet::new();
    for (i, plan) in union.parts.iter().enumerate() {
        let _span = recorder.span_lazy(|| format!("disjunct {i}: {}", plan.head));
        out.extend(execute_physical_cq(plan, reg, cfg)?);
    }
    Ok(out)
}

/// [`execute_physical_union`] plus per-operator runtime counters for every
/// disjunct.
pub fn execute_physical_union_profiled(
    union: &PhysicalUnion,
    reg: &mut SourceRegistry<'_>,
    cfg: ExecConfig,
) -> Result<(BTreeSet<Tuple>, UnionProfile), EngineError> {
    let recorder = reg.recorder().clone();
    let mut out = BTreeSet::new();
    let mut parts = Vec::with_capacity(union.parts.len());
    for (i, plan) in union.parts.iter().enumerate() {
        let _span = recorder.span_lazy(|| format!("disjunct {i}: {}", plan.head));
        let (rows, profile) = execute_physical_cq_profiled(plan, reg, cfg)?;
        out.extend(rows);
        parts.push(profile);
    }
    Ok((out, UnionProfile { parts }))
}

/// One disjunct dropped from a degraded evaluation: which pipeline, and
/// the terminal source failure that forced the drop.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct DisjunctDegradation {
    /// Position of the disjunct in the union.
    pub index: usize,
    /// The disjunct head (`Q(i, a, t)`).
    pub head: String,
    /// Relation whose source gave up.
    pub relation: String,
    /// Fetch attempts made before giving up.
    pub attempts: u32,
    /// The terminal fault, rendered.
    pub reason: String,
}

impl fmt::Display for DisjunctDegradation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "disjunct {} ({}): source {} unavailable after {} attempt(s): {}",
            self.index, self.head, self.relation, self.attempts, self.reason
        )
    }
}

/// Executes a physical union in degradation mode: a disjunct whose source
/// exhausts its retries ([`EngineError::SourceUnavailable`]) is dropped
/// *whole* — it contributes no rows at all — and reported, while the
/// remaining disjuncts still evaluate. Every drop bumps the
/// `source.degraded` counter on the registry's recorder.
///
/// Soundness: a fault is an error, never an empty answer, so a surviving
/// disjunct returns exactly its fault-free rows and the degraded result is
/// a subset of the fault-free one. Any other error still aborts the run —
/// only source unavailability degrades.
pub fn execute_physical_union_degraded(
    union: &PhysicalUnion,
    reg: &mut SourceRegistry<'_>,
    cfg: ExecConfig,
) -> Result<(BTreeSet<Tuple>, Vec<DisjunctDegradation>), EngineError> {
    let recorder = reg.recorder().clone();
    let degraded = recorder.counter("source.degraded");
    let mut out = BTreeSet::new();
    let mut dropped = Vec::new();
    for (i, plan) in union.parts.iter().enumerate() {
        let _span = recorder.span_lazy(|| format!("disjunct {i}: {}", plan.head));
        match execute_physical_cq(plan, reg, cfg) {
            Ok(rows) => out.extend(rows),
            Err(EngineError::SourceUnavailable { relation, attempts, reason }) => {
                degraded.incr();
                let d = DisjunctDegradation {
                    index: i,
                    head: plan.head.to_string(),
                    relation,
                    attempts,
                    reason,
                };
                reg.journal_emit(journal_kind::DISJUNCT_DEGRADED, degradation_json(&d));
                dropped.push(d);
            }
            Err(other) => return Err(other),
        }
    }
    Ok((out, dropped))
}

fn degradation_json(d: &DisjunctDegradation) -> Json {
    Json::obj([
        ("index", Json::num(d.index as u64)),
        ("head", Json::str(d.head.as_str())),
        ("relation", Json::str(d.relation.as_str())),
        ("attempts", Json::num(u64::from(d.attempts))),
        ("reason", Json::str(d.reason.as_str())),
    ])
}

/// Parallel [`execute_physical_union_degraded`]: one worker thread, source
/// registry, and (when `resilience.fault` is set) independently-seeded
/// fault stream per disjunct — worker `i` uses
/// [`crate::FaultConfig::derive`]`(i)`, so the schedule is deterministic
/// regardless of thread interleaving.
pub fn execute_physical_union_parallel_degraded(
    union: &PhysicalUnion,
    db: &Database,
    schema: &Schema,
    recorder: &lap_obs::Recorder,
    cfg: ExecConfig,
    resilience: &crate::ResilienceConfig,
) -> Result<(BTreeSet<Tuple>, CallStats, Vec<DisjunctDegradation>), EngineError> {
    if union.parts.is_empty() {
        return Ok((BTreeSet::new(), CallStats::default(), Vec::new()));
    }
    let _span = recorder.span("eval.parallel");
    let degraded = recorder.counter("source.degraded");
    type WorkerResult =
        Result<(Result<BTreeSet<Tuple>, DisjunctDegradation>, CallStats), EngineError>;
    let results: Vec<WorkerResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = union
            .parts
            .iter()
            .enumerate()
            .map(|(i, plan)| {
                scope.spawn(move || {
                    let mut reg = SourceRegistry::new(db, schema)
                        .recording(recorder)
                        .with_journal_lane(i as u64)
                        .with_io_workers(cfg.io_workers)
                        .with_retry(resilience.retry);
                    if let Some(fault) = &resilience.fault {
                        reg = reg.with_fault_injection(fault.derive(i as u64));
                    }
                    match execute_physical_cq(plan, &mut reg, cfg) {
                        Ok(rows) => Ok((Ok(rows), reg.stats())),
                        Err(EngineError::SourceUnavailable { relation, attempts, reason }) => Ok((
                            Err(DisjunctDegradation {
                                index: i,
                                head: plan.head.to_string(),
                                relation,
                                attempts,
                                reason,
                            }),
                            reg.stats(),
                        )),
                        Err(other) => Err(other),
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread does not panic"))
            .collect()
    });
    let mut out = BTreeSet::new();
    let mut stats = CallStats::default();
    let mut dropped = Vec::new();
    for r in results {
        let (outcome, s) = r?;
        stats.absorb(s);
        match outcome {
            Ok(rows) => out.extend(rows),
            Err(d) => {
                degraded.incr();
                // The drop decision lands on the main thread, which holds no
                // registry — emit through the shared recorder on the
                // degraded worker's lane.
                if let Some(journal) = recorder.journal() {
                    journal.emit(
                        d.index as u64,
                        0,
                        journal_kind::DISJUNCT_DEGRADED,
                        degradation_json(&d),
                    );
                }
                dropped.push(d);
            }
        }
    }
    Ok((out, stats, dropped))
}

/// Executes a physical union with one worker thread (and one source
/// registry) per disjunct, merging answers and call statistics.
pub fn execute_physical_union_parallel(
    union: &PhysicalUnion,
    db: &Database,
    schema: &Schema,
    cfg: ExecConfig,
) -> Result<(BTreeSet<Tuple>, CallStats), EngineError> {
    execute_physical_union_parallel_obs(union, db, schema, &lap_obs::Recorder::disabled(), cfg)
}

/// [`execute_physical_union_parallel`] under `recorder`: the fan-out runs
/// in an `eval.parallel` span and every worker's registry reports to the
/// shared recorder.
pub fn execute_physical_union_parallel_obs(
    union: &PhysicalUnion,
    db: &Database,
    schema: &Schema,
    recorder: &lap_obs::Recorder,
    cfg: ExecConfig,
) -> Result<(BTreeSet<Tuple>, CallStats), EngineError> {
    if union.parts.is_empty() {
        return Ok((BTreeSet::new(), CallStats::default()));
    }
    let _span = recorder.span("eval.parallel");
    let results: Vec<Result<(BTreeSet<Tuple>, CallStats), EngineError>> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = union
                .parts
                .iter()
                .enumerate()
                .map(|(i, plan)| {
                    scope.spawn(move || {
                        let mut reg = SourceRegistry::new(db, schema)
                            .recording(recorder)
                            .with_journal_lane(i as u64)
                            .with_io_workers(cfg.io_workers);
                        let rows = execute_physical_cq(plan, &mut reg, cfg)?;
                        Ok((rows, reg.stats()))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread does not panic"))
                .collect()
        });
    let mut out = BTreeSet::new();
    let mut stats = CallStats::default();
    for r in results {
        let (rows, s) = r?;
        out.extend(rows);
        stats.absorb(s);
    }
    Ok((out, stats))
}

#[cfg(test)]
mod tests {
    use super::super::lower::{lower_cq, lower_union};
    use super::*;
    use lap_ir::parse_cq;

    fn bookstore() -> (Database, Schema) {
        let db = Database::from_facts(
            r#"
            B(1, "tolkien", "lotr"). B(2, "tolkien", "hobbit"). B(3, "adams", "hhgttg").
            C(1, "tolkien"). C(3, "adams"). C(4, "tolkien").
            L(1).
            "#,
        )
        .unwrap();
        let schema =
            Schema::from_patterns(&[("B", "ioo"), ("B", "oio"), ("C", "oo"), ("L", "o")]).unwrap();
        (db, schema)
    }

    fn run(text: &str, nulls: &[&str], batch: usize) -> Result<BTreeSet<Tuple>, EngineError> {
        let (db, schema) = bookstore();
        let null_vars: Vec<lap_ir::Var> = nulls.iter().map(|n| lap_ir::Var::new(n)).collect();
        let plan = lower_cq(&parse_cq(text).unwrap(), &null_vars, &schema);
        let mut reg = SourceRegistry::new(&db, &schema);
        execute_physical_cq(&plan, &mut reg, ExecConfig::with_batch_size(batch))
    }

    #[test]
    fn answers_are_identical_across_batch_widths() {
        let text = "Q(i, a, t) :- C(i, a), B(i, a, t), not L(i).";
        let wide = run(text, &[], 1024).unwrap();
        assert_eq!(run(text, &[], 1).unwrap(), wide);
        assert_eq!(run(text, &[], 2).unwrap(), wide);
        assert_eq!(wide.len(), 1);
    }

    #[test]
    fn duplicate_input_keys_are_deduplicated_within_a_batch() {
        // Two C rows share the author "tolkien"; B^oio is keyed on it, so a
        // wide batch issues one call where the tuple-at-a-time path made
        // two.
        let (db, schema) = bookstore();
        let cq = parse_cq("Q(t) :- C(i, a), B(i2, a, t).").unwrap();
        let plan = lower_cq(&cq, &[], &schema);
        let mut wide = SourceRegistry::new(&db, &schema);
        let rows =
            execute_physical_cq(&plan, &mut wide, ExecConfig::with_batch_size(1024)).unwrap();
        let mut narrow = SourceRegistry::new(&db, &schema);
        let rows1 =
            execute_physical_cq(&plan, &mut narrow, ExecConfig::with_batch_size(1)).unwrap();
        assert_eq!(rows, rows1);
        assert!(wide.stats().calls < narrow.stats().calls, "{:?} vs {:?}", wide.stats(), narrow.stats());
    }

    #[test]
    fn errors_fire_only_when_reached() {
        // The broken literal sits behind an empty prefix: no binding ever
        // reaches it, so the plan evaluates to the empty set (the legacy
        // laziness ANSWER* depends on).
        let rows = run("Q(a) :- C(9, a), Zzz(a, b).", &[], 64);
        assert!(rows.unwrap().is_empty());
        // At depth 0 the unit binding always arrives: hard error.
        let err = run("Q(i, a, t) :- B(i, a, t), C(i, a).", &[], 64).unwrap_err();
        assert!(matches!(err, EngineError::NotExecutable { .. }), "{err}");
    }

    #[test]
    fn profiled_union_counts_operator_traffic() {
        let (db, schema) = bookstore();
        let parts = vec![
            (parse_cq("Q(i, a, t) :- C(i, a), B(i, a, t), not L(i).").unwrap(), vec![]),
        ];
        let union = lower_union(&parts, &schema);
        let mut reg = SourceRegistry::new(&db, &schema);
        let (rows, profile) =
            execute_physical_union_profiled(&union, &mut reg, ExecConfig::default()).unwrap();
        assert_eq!(rows.len(), 1);
        let ops = &profile.parts[0].ops;
        assert_eq!(ops[0].rows_in, 1); // the unit binding
        assert_eq!(ops[0].calls, 1); // one free scan of C
        assert_eq!(ops[1].rows_in, 3); // three C rows reach the join
        assert_eq!(ops[3].rows_out, 1); // one distinct answer
        let text = profile.to_string();
        assert!(text.contains("invoked"), "{text}");
        assert!(text.contains("NegFilter not L(i)"), "{text}");
    }

    #[test]
    fn parallel_union_matches_sequential() {
        let (db, schema) = bookstore();
        let parts = vec![
            (parse_cq("Q(i) :- C(i, a).").unwrap(), vec![]),
            (parse_cq("Q(i) :- L(i).").unwrap(), vec![]),
        ];
        let union = lower_union(&parts, &schema);
        let cfg = ExecConfig::default();
        let mut reg = SourceRegistry::new(&db, &schema);
        let seq = execute_physical_union(&union, &mut reg, cfg).unwrap();
        let (par, stats) = execute_physical_union_parallel(&union, &db, &schema, cfg).unwrap();
        assert_eq!(seq, par);
        assert_eq!(stats.calls, reg.stats().calls);
        assert_eq!(stats.tuples_returned, reg.stats().tuples_returned);
    }
}
