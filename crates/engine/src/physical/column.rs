//! Columnar batches: the data layout of the vectorized executor.
//!
//! A [`ColumnBatch`] stores bindings column-wise — one `u32` code buffer
//! per *bound* plan slot — instead of the row executor's
//! `Vec<Option<Value>>` per binding. Three ideas carry the design:
//!
//! * **Dictionary interning.** Every [`Value`] that enters the pipeline is
//!   interned once in a [`Dictionary`] (the engine-level promotion of the
//!   string [`Interner`](lap_obs::journal) the flight recorder uses) and
//!   flows as a dense `u32` code. Equality on codes *is* equality on
//!   values, so joins, membership memos, and answer dedup all run on
//!   machine words; values are decoded only at the projection root. The
//!   dictionary lives for one (union) execution and its hit/miss counters
//!   feed the `dict%` column of [`OpProfile`](super::OpProfile).
//! * **Uniform boundness.** Boundness at an operator is decided at plan
//!   time, so *every* row of a batch has the same bound slot set: a slot's
//!   column is either present for all rows or absent for all rows — no
//!   per-cell `Option`.
//! * **Selection vectors.** Filters ([`super::PhysOp::NegFilter`], bound-
//!   output checks in a bind join) never move column data; they shrink the
//!   batch's selection vector — the ascending list of live row indices —
//!   and dead rows ride along untouched until the next operator densifies
//!   its output. Column buffers and selection vectors are `Rc`-shared, so
//!   splitting a batch at a width boundary is O(columns), not O(rows).
//!
//! Batches are deliberately *not* `Send`: a pipeline is single-threaded
//! (the parallel union fans out whole pipelines, one per worker), so the
//! sharing is plain `Rc`.

use crate::value::Value;
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};
use std::rc::Rc;

/// A dictionary code: one `u32` per distinct [`Value`] seen this execution.
pub type Code = u32;

/// Multiply-xor hasher for the executor's small fixed-width keys: codes,
/// short code slices, and interned [`Value`]s. The standard library's
/// SipHash defends against adversarial key collisions; dictionary codes
/// are dense indices the executor mints itself, so the cheap mix is safe —
/// and these maps are probed once per row, where the SipHash setup cost
/// dominates the lookup.
#[derive(Default)]
pub struct CodeHasher(u64);

impl CodeHasher {
    fn mix(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

impl Hasher for CodeHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(word));
        }
    }

    fn write_u8(&mut self, n: u8) {
        self.mix(n.into());
    }

    fn write_u32(&mut self, n: u32) {
        self.mix(n.into());
    }

    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

/// A hash map keyed by codes, code slices, or values, using [`CodeHasher`].
pub type CodeMap<K, V> = HashMap<K, V, BuildHasherDefault<CodeHasher>>;

/// A hash set of code tuples, using [`CodeHasher`].
pub type CodeSet<K> = HashSet<K, BuildHasherDefault<CodeHasher>>;

/// Value ↔ code interning table for one execution, with hit/miss counters.
///
/// The same idea as the flight recorder's string `Interner`, promoted to
/// engine [`Value`]s: `intern` returns a stable dense code, `value`
/// decodes it. The hit rate (repeat values over total interns) is the
/// observability signal the profiler reports — a high rate means the
/// column buffers are dominated by a small active domain and code-level
/// equality is doing the heavy lifting.
#[derive(Clone, Debug, Default)]
pub struct Dictionary {
    values: Vec<Value>,
    index: CodeMap<Value, Code>,
    hits: u64,
    misses: u64,
}

impl Dictionary {
    /// An empty dictionary.
    pub fn new() -> Dictionary {
        Dictionary::default()
    }

    /// Interns a value, returning its code (stable for the dictionary's
    /// lifetime). Counts a hit when the value was already present.
    pub fn intern(&mut self, v: Value) -> Code {
        if let Some(&code) = self.index.get(&v) {
            self.hits += 1;
            return code;
        }
        self.misses += 1;
        let code = Code::try_from(self.values.len()).expect("dictionary overflow (2^32 values)");
        self.values.push(v);
        self.index.insert(v, code);
        code
    }

    /// Decodes a code back to its value.
    pub fn value(&self, code: Code) -> Value {
        self.values[code as usize]
    }

    /// Distinct values interned so far.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True iff nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Interns that found the value already present.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Interns that created a new code.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// `(hits, misses)` — callers snapshot this around an operator to
    /// attribute dictionary traffic per op.
    pub fn counts(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

/// One batch of bindings in columnar layout: per-slot code buffers plus a
/// selection-vector window over them. See the module docs for the layout
/// invariants.
#[derive(Clone, Debug)]
pub struct ColumnBatch {
    /// One entry per plan slot: `Some` iff the slot is bound at this point
    /// of the pipeline (uniformly, for every row of the batch).
    cols: Vec<Option<Rc<Vec<Code>>>>,
    /// Ascending live row indices into the column buffers.
    sel: Rc<Vec<u32>>,
    /// The live window: `sel[start..end]` are this batch's rows.
    start: usize,
    end: usize,
}

impl ColumnBatch {
    /// The single unit batch feeding a pipeline leaf: one live row, no
    /// bound slots (the columnar analogue of `vec![None; slots]`).
    pub fn unit(num_slots: usize) -> ColumnBatch {
        ColumnBatch {
            cols: vec![None; num_slots],
            sel: Rc::new(vec![0]),
            start: 0,
            end: 1,
        }
    }

    /// A dense batch: `len` rows, identity selection, columns as built.
    /// Every `Some` column must hold exactly `len` codes.
    pub fn dense(cols: Vec<Option<Vec<Code>>>, len: usize) -> ColumnBatch {
        debug_assert!(cols
            .iter()
            .all(|c| c.as_ref().is_none_or(|c| c.len() == len)));
        ColumnBatch {
            cols: cols.into_iter().map(|c| c.map(Rc::new)).collect(),
            sel: Rc::new((0..len as u32).collect()),
            start: 0,
            end: len,
        }
    }

    /// Live rows in this batch.
    pub fn live(&self) -> usize {
        self.end - self.start
    }

    /// Dead rows this batch still carries: the physical span its selection
    /// window covers, minus the live rows. Zero for dense batches; after a
    /// filter it approximates how many killed rows ride along unswept.
    pub fn dead(&self) -> usize {
        if self.live() == 0 {
            return 0;
        }
        let span = (self.sel[self.end - 1] - self.sel[self.start]) as usize + 1;
        span - self.live()
    }

    /// The live row indices, in order.
    pub fn rows(&self) -> &[u32] {
        &self.sel[self.start..self.end]
    }

    /// The code buffer of a bound slot (`None` while unbound). Indices in
    /// [`ColumnBatch::rows`] address this buffer.
    pub fn col(&self, slot: usize) -> Option<&[Code]> {
        self.cols[slot].as_deref().map(|v| v.as_slice())
    }

    /// True iff `slot` is bound in this batch.
    pub fn is_bound(&self, slot: usize) -> bool {
        self.cols[slot].is_some()
    }

    /// Splits off the first `n` live rows as their own batch (sharing the
    /// column buffers), leaving the remainder in `self`. `n` must be
    /// `< live()`.
    pub fn split_front(&mut self, n: usize) -> ColumnBatch {
        debug_assert!(n < self.live());
        let front = ColumnBatch {
            cols: self.cols.clone(),
            sel: Rc::clone(&self.sel),
            start: self.start,
            end: self.start + n,
        };
        self.start += n;
        front
    }

    /// The same batch narrowed to a new selection (absolute row indices
    /// into the column buffers, ascending — the survivors of a filter).
    /// Column data is shared, not copied.
    pub fn with_selection(&self, survivors: Vec<u32>) -> ColumnBatch {
        let end = survivors.len();
        ColumnBatch {
            cols: self.cols.clone(),
            sel: Rc::new(survivors),
            start: 0,
            end,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dictionary_interns_and_counts() {
        let mut d = Dictionary::new();
        let a = d.intern(Value::int(1));
        let b = d.intern(Value::str("x"));
        assert_ne!(a, b);
        assert_eq!(d.intern(Value::int(1)), a);
        assert_eq!(d.value(a), Value::int(1));
        assert_eq!(d.value(b), Value::str("x"));
        assert_eq!(d.counts(), (1, 2));
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn unit_batch_has_one_unbound_row() {
        let b = ColumnBatch::unit(3);
        assert_eq!(b.live(), 1);
        assert_eq!(b.dead(), 0);
        assert!(!b.is_bound(0));
        assert_eq!(b.rows(), &[0]);
    }

    #[test]
    fn split_and_selection_share_columns() {
        let mut b = ColumnBatch::dense(vec![Some(vec![10, 11, 12, 13]), None], 4);
        let front = b.split_front(1);
        assert_eq!(front.live(), 1);
        assert_eq!(b.live(), 3);
        assert_eq!(front.rows(), &[0]);
        assert_eq!(b.rows(), &[1, 2, 3]);
        // A filter that keeps rows 1 and 3: no column data moves.
        let filtered = b.with_selection(vec![1, 3]);
        assert_eq!(filtered.live(), 2);
        assert_eq!(filtered.dead(), 1);
        assert_eq!(filtered.col(0).unwrap()[3], 13);
    }
}
