//! Engine error type.

use lap_ir::AccessPattern;
use std::error::Error;
use std::fmt;

/// Errors raised by the relational engine and its source adapters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A tuple's length did not match the relation's arity.
    ArityMismatch {
        /// Declared arity.
        expected: usize,
        /// Offending tuple length.
        found: usize,
    },
    /// A referenced relation does not exist in the database or schema.
    UnknownRelation(String),
    /// A source call used an access pattern the relation does not expose.
    PatternNotAvailable {
        /// Relation name.
        relation: String,
        /// The pattern that was requested.
        requested: AccessPattern,
    },
    /// A source call failed to supply a value for an input slot.
    MissingInput {
        /// Relation name.
        relation: String,
        /// The pattern used.
        pattern: AccessPattern,
        /// 0-based input slot with no value.
        position: usize,
    },
    /// A plan step was not executable: a positive literal had unbound
    /// variables in every available pattern's input slots.
    NotExecutable {
        /// Rendering of the offending literal.
        literal: String,
        /// Why execution was impossible.
        reason: String,
    },
    /// A negated literal was reached while some of its variables were still
    /// unbound (negation can only filter, never bind — paper, Example 1).
    UnboundNegation {
        /// Rendering of the offending literal.
        literal: String,
    },
    /// Domain enumeration exceeded its call budget.
    BudgetExhausted {
        /// The budget that was exceeded (number of source calls).
        budget: u64,
    },
    /// A ground fact was expected (e.g. when loading a database from text).
    NotGround(String),
    /// A source call kept faulting until its retry budget (attempts or
    /// per-query deadline) ran out. Degraded evaluation modes catch this
    /// variant and drop the affected disjunct instead of aborting.
    SourceUnavailable {
        /// Relation whose source gave up.
        relation: String,
        /// Attempts made, including the first.
        attempts: u32,
        /// The terminal fault, rendered.
        reason: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::ArityMismatch { expected, found } => {
                write!(f, "arity mismatch: expected {expected}, found {found}")
            }
            EngineError::UnknownRelation(r) => write!(f, "unknown relation {r}"),
            EngineError::PatternNotAvailable { relation, requested } => {
                write!(f, "relation {relation} does not expose pattern {requested}")
            }
            EngineError::MissingInput {
                relation,
                pattern,
                position,
            } => write!(
                f,
                "call to {relation}^{pattern} lacks a value for input slot {position}"
            ),
            EngineError::NotExecutable { literal, reason } => {
                write!(f, "literal {literal} is not executable here: {reason}")
            }
            EngineError::UnboundNegation { literal } => {
                write!(f, "negated literal {literal} reached with unbound variables")
            }
            EngineError::BudgetExhausted { budget } => {
                write!(f, "domain enumeration exceeded its budget of {budget} source calls")
            }
            EngineError::NotGround(s) => write!(f, "expected a ground fact, found {s}"),
            EngineError::SourceUnavailable { relation, attempts, reason } => write!(
                f,
                "source {relation} unavailable after {attempts} attempt(s): {reason}"
            ),
        }
    }
}

impl Error for EngineError {}
