//! A blocking TCP client for the `lapd` protocol.

use crate::frame::{read_frame, write_frame, FrameError, MAX_FRAME_BYTES};
use crate::message::{QueryOptions, Request, Response};
use std::io::BufReader;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One connection-scoped session with a `lapd` daemon: send a request,
/// block for its response. Request ids are assigned monotonically per
/// client and checked on receipt.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connects to `addr` (e.g. `"127.0.0.1:7464"`).
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
            next_id: 1,
        })
    }

    /// Sets a read timeout so a hung server cannot block the client
    /// forever.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Sends `req` (its id is overwritten with this client's next id) and
    /// blocks for the matching response.
    pub fn call(&mut self, req: Request) -> Result<Response, FrameError> {
        let id = self.next_id;
        self.next_id += 1;
        let req = with_id(req, id);
        write_frame(&mut self.writer, &req.to_json())?;
        let doc = read_frame(&mut self.reader, MAX_FRAME_BYTES)?;
        let resp = Response::from_json(&doc).map_err(FrameError::Malformed)?;
        let got = match &resp {
            Response::Ok { id, .. } | Response::Error { id, .. } => *id,
        };
        // id 0 marks an unsolicited error (e.g. quota refusal before the
        // request was parsed); anything else must echo our id.
        if got != 0 && got != id {
            return Err(FrameError::Malformed(format!(
                "response id {got} does not match request id {id}"
            )));
        }
        Ok(resp)
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<Response, FrameError> {
        self.call(Request::Ping { id: 0 })
    }

    /// Executes a program over an inline instance.
    pub fn query(
        &mut self,
        program: &str,
        facts: &str,
        options: QueryOptions,
    ) -> Result<Response, FrameError> {
        self.call(Request::Query {
            id: 0,
            program: program.to_owned(),
            facts: facts.to_owned(),
            options,
        })
    }

    /// Fetches server statistics.
    pub fn stats(&mut self) -> Result<Response, FrameError> {
        self.call(Request::Stats { id: 0 })
    }

    /// Asks the daemon to shut down gracefully.
    pub fn shutdown(&mut self) -> Result<Response, FrameError> {
        self.call(Request::Shutdown { id: 0 })
    }

    /// Fetches the daemon's live calibration profile.
    pub fn profile(&mut self) -> Result<Response, FrameError> {
        self.call(Request::Profile { id: 0 })
    }

    /// Fetches per-source health and drift rollups.
    pub fn health(&mut self) -> Result<Response, FrameError> {
        self.call(Request::Health { id: 0 })
    }

    /// Forces a recalibration sweep over every cached plan.
    pub fn recalibrate(&mut self) -> Result<Response, FrameError> {
        self.call(Request::Recalibrate { id: 0 })
    }
}

fn with_id(req: Request, id: u64) -> Request {
    match req {
        Request::Ping { .. } => Request::Ping { id },
        Request::Stats { .. } => Request::Stats { id },
        Request::Shutdown { .. } => Request::Shutdown { id },
        Request::Profile { .. } => Request::Profile { id },
        Request::Health { .. } => Request::Health { id },
        Request::Recalibrate { .. } => Request::Recalibrate { id },
        Request::Query { program, facts, options, .. } => {
            Request::Query { id, program, facts, options }
        }
    }
}
