//! Request and response message shapes.
//!
//! Every request is an object `{"v", "id", "op", ...}`; every response is
//! `{"id", "ok", ...}`. The `id` is chosen by the client and echoed back
//! verbatim, so a client that (unlike [`crate::Client`]) wants to
//! interleave requests on several connections can correlate replies.

use lap_obs::Json;

/// Protocol version spoken by this build. The daemon answers requests
/// with a higher version with [`ErrorCode::BadRequest`].
pub const PROTO_VERSION: u64 = 1;

/// Execution knobs a query request may carry. All optional; the daemon
/// validates ranges exactly like the `lapq` CLI does.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QueryOptions {
    /// Overlapped source I/O workers (`--io-workers`).
    pub io_workers: Option<u64>,
    /// Executor batch width (`--batch-width`).
    pub batch_width: Option<u64>,
    /// Fault-injection rate (`--fault-rate`); engages the resilient path.
    pub fault_rate: Option<f64>,
    /// Fault-injection seed (`--fault-seed`).
    pub fault_seed: Option<u64>,
    /// Injected per-call virtual latency (`--latency-ms`).
    pub latency_ms: Option<u64>,
    /// Per-call timeout (`--timeout-ms`).
    pub timeout_ms: Option<u64>,
    /// Maximum retry attempts (`--retry`).
    pub retry: Option<u64>,
    /// Per-request virtual-clock deadline for the retry loop
    /// (`--retry-budget-ms`): the degradation budget of PR 4, now a
    /// per-request admission lever.
    pub deadline_ms: Option<u64>,
}

impl QueryOptions {
    /// True when any resilience knob is set — the daemon then runs the
    /// degradation-mode executor. The set of triggering knobs mirrors the
    /// `lapq` CLI's resilience flags exactly (including `io_workers`,
    /// which the CLI routes through the resilient path too), so a daemon
    /// answer stays byte-identical to a one-shot `lapq run` with the same
    /// options.
    pub fn wants_resilience(&self) -> bool {
        self.io_workers.is_some()
            || self.fault_rate.is_some()
            || self.fault_seed.is_some()
            || self.latency_ms.is_some()
            || self.timeout_ms.is_some()
            || self.retry.is_some()
            || self.deadline_ms.is_some()
    }

    fn to_json(&self) -> Json {
        let mut pairs: Vec<(String, Json)> = Vec::new();
        let mut num = |k: &str, v: Option<u64>| {
            if let Some(n) = v {
                pairs.push((k.to_owned(), Json::num(n)));
            }
        };
        num("io_workers", self.io_workers);
        num("batch_width", self.batch_width);
        num("fault_seed", self.fault_seed);
        num("latency_ms", self.latency_ms);
        num("timeout_ms", self.timeout_ms);
        num("retry", self.retry);
        num("deadline_ms", self.deadline_ms);
        if let Some(rate) = self.fault_rate {
            pairs.push(("fault_rate".to_owned(), Json::Num(rate)));
        }
        Json::Obj(pairs)
    }

    fn from_json(doc: &Json) -> Result<QueryOptions, String> {
        let num = |k: &str| doc.get(k).and_then(Json::as_u64);
        let opts = QueryOptions {
            io_workers: num("io_workers"),
            batch_width: num("batch_width"),
            fault_rate: doc.get("fault_rate").and_then(Json::as_f64),
            fault_seed: num("fault_seed"),
            latency_ms: num("latency_ms"),
            timeout_ms: num("timeout_ms"),
            retry: num("retry"),
            deadline_ms: num("deadline_ms"),
        };
        Ok(opts)
    }
}

/// One client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness probe; answered with an empty `ok` frame.
    Ping {
        /// Client-chosen correlation id, echoed in the response.
        id: u64,
    },
    /// Compile (or fetch from the shared plan cache) and execute a
    /// program over an inline instance.
    Query {
        /// Client-chosen correlation id, echoed in the response.
        id: u64,
        /// Program text: access-pattern declarations plus rules, exactly
        /// the contents of a `.lap` program file.
        program: String,
        /// Facts text: ground atoms, exactly the contents of a facts file.
        facts: String,
        /// Execution knobs.
        options: QueryOptions,
    },
    /// Server statistics: plan cache hits/misses/evictions, containment
    /// engine counters, session and quota accounting.
    Stats {
        /// Client-chosen correlation id, echoed in the response.
        id: u64,
    },
    /// Graceful shutdown: the daemon stops accepting connections,
    /// finishes in-flight requests, and exits.
    Shutdown {
        /// Client-chosen correlation id, echoed in the response.
        id: u64,
    },
    /// The daemon's live calibration profile — the telemetry hub's
    /// published `FeedbackStore` as JSON (the same shape `lapq calibrate`
    /// writes and `lapq obs-validate` checks).
    Profile {
        /// Client-chosen correlation id, echoed in the response.
        id: u64,
    },
    /// Per-source health and drift rollups from the telemetry hub.
    Health {
        /// Client-chosen correlation id, echoed in the response.
        id: u64,
    },
    /// Force one telemetry sweep that recalibrates every cached plan
    /// against the live profile, ignoring drift thresholds and cooldowns.
    Recalibrate {
        /// Client-chosen correlation id, echoed in the response.
        id: u64,
    },
}

impl Request {
    /// The request's correlation id.
    pub fn id(&self) -> u64 {
        match self {
            Request::Ping { id }
            | Request::Query { id, .. }
            | Request::Stats { id }
            | Request::Shutdown { id }
            | Request::Profile { id }
            | Request::Health { id }
            | Request::Recalibrate { id } => *id,
        }
    }

    /// Encodes the request as a frame payload.
    pub fn to_json(&self) -> Json {
        match self {
            Request::Ping { id } => Json::obj([
                ("v", Json::num(PROTO_VERSION)),
                ("id", Json::num(*id)),
                ("op", Json::str("ping")),
            ]),
            Request::Query { id, program, facts, options } => Json::obj([
                ("v", Json::num(PROTO_VERSION)),
                ("id", Json::num(*id)),
                ("op", Json::str("query")),
                ("program", Json::str(program.as_str())),
                ("facts", Json::str(facts.as_str())),
                ("options", options.to_json()),
            ]),
            Request::Stats { id } => Json::obj([
                ("v", Json::num(PROTO_VERSION)),
                ("id", Json::num(*id)),
                ("op", Json::str("stats")),
            ]),
            Request::Shutdown { id } => Json::obj([
                ("v", Json::num(PROTO_VERSION)),
                ("id", Json::num(*id)),
                ("op", Json::str("shutdown")),
            ]),
            Request::Profile { id } => Json::obj([
                ("v", Json::num(PROTO_VERSION)),
                ("id", Json::num(*id)),
                ("op", Json::str("profile")),
            ]),
            Request::Health { id } => Json::obj([
                ("v", Json::num(PROTO_VERSION)),
                ("id", Json::num(*id)),
                ("op", Json::str("health")),
            ]),
            Request::Recalibrate { id } => Json::obj([
                ("v", Json::num(PROTO_VERSION)),
                ("id", Json::num(*id)),
                ("op", Json::str("recalibrate")),
            ]),
        }
    }

    /// Decodes a frame payload into a request. The error string is safe to
    /// echo back in a `bad-request` frame.
    pub fn from_json(doc: &Json) -> Result<Request, String> {
        let v = doc.get("v").and_then(Json::as_u64).ok_or("missing numeric \"v\"")?;
        if v > PROTO_VERSION {
            return Err(format!("protocol version {v} is newer than {PROTO_VERSION}"));
        }
        let id = doc.get("id").and_then(Json::as_u64).ok_or("missing numeric \"id\"")?;
        let op = doc.get("op").and_then(Json::as_str).ok_or("missing string \"op\"")?;
        match op {
            "ping" => Ok(Request::Ping { id }),
            "stats" => Ok(Request::Stats { id }),
            "shutdown" => Ok(Request::Shutdown { id }),
            "profile" => Ok(Request::Profile { id }),
            "health" => Ok(Request::Health { id }),
            "recalibrate" => Ok(Request::Recalibrate { id }),
            "query" => {
                let program = doc
                    .get("program")
                    .and_then(Json::as_str)
                    .ok_or("query needs a string \"program\"")?
                    .to_owned();
                let facts = doc
                    .get("facts")
                    .and_then(Json::as_str)
                    .ok_or("query needs a string \"facts\"")?
                    .to_owned();
                let options = match doc.get("options") {
                    Some(opts) => QueryOptions::from_json(opts)?,
                    None => QueryOptions::default(),
                };
                Ok(Request::Query { id, program, facts, options })
            }
            other => Err(format!("unknown op {other:?}")),
        }
    }
}

/// Stable error codes carried by error frames.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// Admission control refused the request; retry later.
    Quota,
    /// The frame itself was unusable (oversized, truncated, not JSON).
    /// The session ends after this reply — the stream may be out of sync.
    BadFrame,
    /// The frame was valid JSON but not a valid request.
    BadRequest,
    /// The program/facts failed to parse or the query failed to execute.
    QueryError,
    /// The daemon is shutting down and no longer accepts work.
    ShuttingDown,
}

impl ErrorCode {
    /// The wire spelling of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Quota => "quota",
            ErrorCode::BadFrame => "bad-frame",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::QueryError => "query-error",
            ErrorCode::ShuttingDown => "shutting-down",
        }
    }

    /// Parses the wire spelling.
    pub fn parse(s: &str) -> Option<ErrorCode> {
        Some(match s {
            "quota" => ErrorCode::Quota,
            "bad-frame" => ErrorCode::BadFrame,
            "bad-request" => ErrorCode::BadRequest,
            "query-error" => ErrorCode::QueryError,
            "shutting-down" => ErrorCode::ShuttingDown,
            _ => return None,
        })
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One server response.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// The request succeeded. `text` is the human-readable result (for a
    /// query: byte-identical to what one-shot `lapq run` prints); `data`
    /// carries op-specific structured fields.
    Ok {
        /// Echo of the request id (0 for unsolicited errors).
        id: u64,
        /// Rendered result text.
        text: String,
        /// Structured payload (`Json::Null` when the op has none).
        data: Json,
    },
    /// The request failed.
    Error {
        /// Echo of the request id (0 when the request never parsed).
        id: u64,
        /// Machine-readable failure class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// Encodes the response as a frame payload.
    pub fn to_json(&self) -> Json {
        match self {
            Response::Ok { id, text, data } => Json::obj([
                ("id", Json::num(*id)),
                ("ok", Json::Bool(true)),
                ("text", Json::str(text.as_str())),
                ("data", data.clone()),
            ]),
            Response::Error { id, code, message } => Json::obj([
                ("id", Json::num(*id)),
                ("ok", Json::Bool(false)),
                (
                    "error",
                    Json::obj([
                        ("code", Json::str(code.as_str())),
                        ("message", Json::str(message.as_str())),
                    ]),
                ),
            ]),
        }
    }

    /// Decodes a frame payload into a response.
    pub fn from_json(doc: &Json) -> Result<Response, String> {
        let id = doc.get("id").and_then(Json::as_u64).ok_or("missing numeric \"id\"")?;
        match doc.get("ok") {
            Some(Json::Bool(true)) => Ok(Response::Ok {
                id,
                text: doc
                    .get("text")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_owned(),
                data: doc.get("data").cloned().unwrap_or(Json::Null),
            }),
            Some(Json::Bool(false)) => {
                let err = doc.get("error").ok_or("error response without \"error\"")?;
                let code = err
                    .get("code")
                    .and_then(Json::as_str)
                    .and_then(ErrorCode::parse)
                    .ok_or("error response without a known \"code\"")?;
                let message = err
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_owned();
                Ok(Response::Error { id, code, message })
            }
            _ => Err("response without boolean \"ok\"".to_owned()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Ping { id: 1 },
            Request::Stats { id: 2 },
            Request::Shutdown { id: 3 },
            Request::Profile { id: 5 },
            Request::Health { id: 6 },
            Request::Recalibrate { id: 7 },
            Request::Query {
                id: 4,
                program: "C^oo.\nQ(i) :- C(i, a).".to_owned(),
                facts: "C(1, \"a\").".to_owned(),
                options: QueryOptions {
                    io_workers: Some(8),
                    batch_width: Some(64),
                    fault_rate: Some(0.25),
                    deadline_ms: Some(500),
                    ..QueryOptions::default()
                },
            },
        ];
        for req in reqs {
            let back = Request::from_json(&req.to_json()).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let resps = [
            Response::Ok {
                id: 9,
                text: "query Q:\n  (1)\n".to_owned(),
                data: Json::obj([("cache_hit", Json::Bool(true))]),
            },
            Response::Error {
                id: 0,
                code: ErrorCode::Quota,
                message: "too many in-flight queries".to_owned(),
            },
        ];
        for resp in resps {
            let back = Response::from_json(&resp.to_json()).unwrap();
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn newer_protocol_version_is_rejected() {
        let doc = Json::obj([
            ("v", Json::num(PROTO_VERSION + 1)),
            ("id", Json::num(1)),
            ("op", Json::str("ping")),
        ]);
        assert!(Request::from_json(&doc).unwrap_err().contains("newer"));
    }

    #[test]
    fn malformed_requests_explain_themselves() {
        let missing_op = Json::obj([("v", Json::num(1)), ("id", Json::num(1))]);
        assert!(Request::from_json(&missing_op).unwrap_err().contains("op"));
        let bad_op = Json::obj([
            ("v", Json::num(1)),
            ("id", Json::num(1)),
            ("op", Json::str("frobnicate")),
        ]);
        assert!(Request::from_json(&bad_op).unwrap_err().contains("unknown op"));
    }
}
