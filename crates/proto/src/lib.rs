//! Wire protocol for the `lapd` query service.
//!
//! The daemon and its clients speak **length-prefixed JSON frames** over a
//! plain TCP stream: a 4-byte big-endian payload length followed by that
//! many bytes of UTF-8 JSON (the hand-rolled [`lap_obs::json`] dialect —
//! the workspace stays zero-dependency). One frame carries one
//! [`Request`] or one [`Response`]; the connection is a strict
//! request/response session with no pipelining, so a blocking client can
//! be written in a dozen lines.
//!
//! Design points, in order of importance:
//!
//! * **Bounded frames.** [`read_frame`] refuses payloads above the
//!   caller's limit *before* allocating, so a malformed or hostile peer
//!   cannot balloon the server ([`MAX_FRAME_BYTES`] is the daemon's
//!   default). A bad length prefix or invalid JSON surfaces as
//!   [`FrameError::Malformed`], which the daemon answers with an error
//!   frame instead of dying.
//! * **Self-describing errors.** Failures travel as `{"ok": false,
//!   "error": {"code", "message"}}` response frames with stable
//!   [`ErrorCode`]s (`quota`, `bad-frame`, `bad-request`, `query-error`,
//!   `shutting-down`), so clients can distinguish back-pressure from
//!   bugs.
//! * **No versioning negotiation.** Every request carries the protocol
//!   version ([`PROTO_VERSION`]); the daemon rejects newer versions with
//!   `bad-request` rather than guessing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod frame;
mod message;

pub use client::Client;
pub use frame::{read_frame, write_frame, FrameError, MAX_FRAME_BYTES};
pub use message::{ErrorCode, QueryOptions, Request, Response, PROTO_VERSION};
