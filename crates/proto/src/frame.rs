//! Length-prefixed JSON frame codec.
//!
//! A frame is `[len: u32 big-endian][payload: len bytes of JSON]`. The
//! codec works over any `Read`/`Write` pair, so the daemon, the client,
//! and the tests all share one implementation.

use lap_obs::{json, Json};
use std::io::{self, Read, Write};

/// Default ceiling on a single frame's payload, in bytes (16 MiB). Large
/// enough for a replay-fidelity journal, small enough that a corrupt
/// length prefix cannot balloon the peer.
pub const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying transport failed mid-frame.
    Io(io::Error),
    /// The peer closed the connection cleanly *between* frames.
    Closed,
    /// The frame is syntactically unusable: oversized length prefix,
    /// truncated payload, or invalid JSON. The connection should answer
    /// with a `bad-frame` error (the stream may be out of sync, so the
    /// session ends after that).
    Malformed(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Malformed(why) => write!(f, "malformed frame: {why}"),
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> FrameError {
        FrameError::Io(e)
    }
}

/// Writes one frame: 4-byte big-endian payload length, then the compact
/// JSON encoding of `doc`.
pub fn write_frame(w: &mut impl Write, doc: &Json) -> io::Result<()> {
    let payload = doc.to_compact();
    let bytes = payload.as_bytes();
    let len = u32::try_from(bytes.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame exceeds u32 length"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Reads one frame, enforcing `max_bytes` on the declared payload length
/// *before* allocating. Returns [`FrameError::Closed`] on a clean EOF at a
/// frame boundary and [`FrameError::Malformed`] on an oversized prefix,
/// a truncated payload, or invalid JSON/UTF-8.
pub fn read_frame(r: &mut impl Read, max_bytes: usize) -> Result<Json, FrameError> {
    let mut prefix = [0u8; 4];
    match read_exact_or_eof(r, &mut prefix)? {
        ReadOutcome::Eof => return Err(FrameError::Closed),
        ReadOutcome::Partial => {
            return Err(FrameError::Malformed("truncated length prefix".to_owned()))
        }
        ReadOutcome::Full => {}
    }
    let len = u32::from_be_bytes(prefix) as usize;
    if len > max_bytes {
        return Err(FrameError::Malformed(format!(
            "frame of {len} bytes exceeds the {max_bytes}-byte limit"
        )));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)
        .map_err(|e| FrameError::Malformed(format!("truncated payload: {e}")))?;
    let text = String::from_utf8(payload)
        .map_err(|e| FrameError::Malformed(format!("payload is not UTF-8: {e}")))?;
    json::parse(&text).map_err(|e| FrameError::Malformed(format!("payload is not JSON: {e}")))
}

enum ReadOutcome {
    Full,
    Partial,
    Eof,
}

/// `read_exact` that distinguishes a clean EOF before the first byte
/// (peer hung up between frames) from a mid-buffer EOF (truncation).
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> io::Result<ReadOutcome> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 { ReadOutcome::Eof } else { ReadOutcome::Partial })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(ReadOutcome::Full)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let doc = Json::obj([("op", Json::str("ping")), ("id", Json::num(7))]);
        let mut buf = Vec::new();
        write_frame(&mut buf, &doc).unwrap();
        let back = read_frame(&mut buf.as_slice(), MAX_FRAME_BYTES).unwrap();
        assert_eq!(back.get("op").and_then(Json::as_str), Some("ping"));
        assert_eq!(back.get("id").and_then(Json::as_u64), Some(7));
    }

    #[test]
    fn several_frames_stream_back_to_back() {
        let mut buf = Vec::new();
        for i in 0..3u64 {
            write_frame(&mut buf, &Json::obj([("id", Json::num(i))])).unwrap();
        }
        let mut r = buf.as_slice();
        for i in 0..3u64 {
            let doc = read_frame(&mut r, MAX_FRAME_BYTES).unwrap();
            assert_eq!(doc.get("id").and_then(Json::as_u64), Some(i));
        }
        assert!(matches!(read_frame(&mut r, MAX_FRAME_BYTES), Err(FrameError::Closed)));
    }

    #[test]
    fn oversized_prefix_is_malformed_not_alloc() {
        // 0xFFFF_FFFF declared bytes against a 1 KiB limit: must refuse
        // before allocating.
        let buf = [0xFFu8, 0xFF, 0xFF, 0xFF, b'x'];
        let err = read_frame(&mut buf.as_slice(), 1024).unwrap_err();
        assert!(matches!(err, FrameError::Malformed(_)), "{err}");
    }

    #[test]
    fn truncated_payload_and_bad_json_are_malformed() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&10u32.to_be_bytes());
        buf.extend_from_slice(b"abc"); // 3 of 10 promised bytes
        assert!(matches!(
            read_frame(&mut buf.as_slice(), 1024),
            Err(FrameError::Malformed(_))
        ));

        let mut bad = Vec::new();
        bad.extend_from_slice(&3u32.to_be_bytes());
        bad.extend_from_slice(b"{{{");
        assert!(matches!(
            read_frame(&mut bad.as_slice(), 1024),
            Err(FrameError::Malformed(_))
        ));
    }

    #[test]
    fn clean_eof_between_frames_is_closed() {
        let empty: &[u8] = &[];
        assert!(matches!(
            read_frame(&mut &empty[..], 1024),
            Err(FrameError::Closed)
        ));
        // EOF inside the prefix is malformed, not Closed.
        let partial: &[u8] = &[0, 0];
        assert!(matches!(
            read_frame(&mut &partial[..], 1024),
            Err(FrameError::Malformed(_))
        ));
    }
}
