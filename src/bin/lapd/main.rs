//! `lapd` — the `lap` query daemon.
//!
//! ```text
//! lapd [--bind <addr>] [--max-sessions <n>] [--exec-permits <n>]
//!      [--admission-wait-ms <n>] [--cache-mb <n>] [--idle-timeout-ms <n>]
//!      [--fold-every <n>] [--watch-interval-ms <n>]
//!      [--recalibrate-cooldown-ms <n>]
//! ```
//!
//! Binds the address (default `127.0.0.1:7464`; use port `0` for an
//! ephemeral port), prints `lapd listening on <addr>` once the listener is
//! live, and serves length-prefixed JSON frames (see `lap::proto`) until a
//! client sends a `shutdown` frame. Query answers are byte-identical to
//! one-shot `lapq run`; repeated programs are served from a shared plan
//! cache. Drive it with `lapq query-daemon`, `lapq daemon-ctl`, or
//! `lapq bench-daemon`.

use lap::daemon::{DaemonConfig, Server};
use std::process::ExitCode;

const DEFAULT_BIND: &str = "127.0.0.1:7464";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("lapd: {msg}");
            eprintln!();
            eprintln!("usage:");
            eprintln!(
                "  lapd [--bind <addr>] [--max-sessions <n>] [--exec-permits <n>]"
            );
            eprintln!(
                "       [--admission-wait-ms <n>] [--cache-mb <n>] [--idle-timeout-ms <n>]"
            );
            eprintln!(
                "       [--fold-every <n>] [--watch-interval-ms <n>] \
                 [--recalibrate-cooldown-ms <n>]"
            );
            ExitCode::FAILURE
        }
    }
}

/// Valued flags `lapd` accepts. Like `lapq`, a repeated flag is a parse
/// error — never a silent last-one-wins.
const VALUE_FLAGS: &[&str] = &[
    "--bind",
    "--max-sessions",
    "--exec-permits",
    "--admission-wait-ms",
    "--cache-mb",
    "--idle-timeout-ms",
    "--fold-every",
    "--watch-interval-ms",
    "--recalibrate-cooldown-ms",
];

fn run(args: &[String]) -> Result<(), String> {
    let mut values = std::collections::BTreeMap::<String, String>::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if VALUE_FLAGS.contains(&arg.as_str()) {
            let value = it.next().ok_or_else(|| format!("{arg} needs a value"))?;
            if values.insert(arg.clone(), value.clone()).is_some() {
                return Err(format!("duplicate flag {arg}"));
            }
        } else {
            return Err(format!("unknown argument {arg:?}"));
        }
    }
    let u64_flag = |name: &str| -> Result<Option<u64>, String> {
        values
            .get(name)
            .map(|raw| raw.parse::<u64>().map_err(|e| format!("bad {name} value: {e}")))
            .transpose()
    };

    let mut config = DaemonConfig::default();
    if let Some(n) = u64_flag("--max-sessions")? {
        if n == 0 {
            return Err("--max-sessions must be at least 1".to_owned());
        }
        config.max_sessions = n as usize;
    }
    if let Some(n) = u64_flag("--exec-permits")? {
        config.exec_permits = n as usize;
    }
    if let Some(n) = u64_flag("--admission-wait-ms")? {
        config.admission_wait_ms = n;
    }
    if let Some(n) = u64_flag("--cache-mb")? {
        if n == 0 {
            return Err("--cache-mb must be at least 1".to_owned());
        }
        config.cache_bytes = (n as usize).saturating_mul(1024 * 1024);
    }
    if let Some(n) = u64_flag("--idle-timeout-ms")? {
        config.idle_timeout_ms = n;
    }
    if let Some(n) = u64_flag("--fold-every")? {
        config.fold_every_requests = n;
    }
    if let Some(n) = u64_flag("--watch-interval-ms")? {
        config.watch_interval_ms = n;
    }
    if let Some(n) = u64_flag("--recalibrate-cooldown-ms")? {
        config.recalibrate_cooldown_ms = n;
    }

    let bind = values.get("--bind").map(String::as_str).unwrap_or(DEFAULT_BIND);
    let server = Server::start(config, bind).map_err(|e| format!("cannot bind {bind}: {e}"))?;
    println!("lapd listening on {}", server.addr());
    // Scripts scrape the line above to learn an ephemeral port; make sure
    // it is out before the first client connects.
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.run_until_shutdown();
    println!("lapd: shut down");
    Ok(())
}
