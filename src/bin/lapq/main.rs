//! `lapq` — command-line front end for the `lap` library.
//!
//! ```text
//! lapq check <program.lap> [--constraints <sigma.lap>]
//!                                           feasibility report per query
//! lapq plan  <program.lap>                 print PLAN*'s Qu and Qo
//! lapq run   <program.lap> <facts.lap>     ANSWER* over an instance
//!            [--domain <budget>]           …with dom(x) refinement
//!            [--fault-rate <p>] [--fault-seed <n>] [--latency-ms <n>]
//!            [--timeout-ms <n>] [--retry <n>] [--retry-budget-ms <n>]
//!                                           …under seeded fault injection:
//!                                           sources fail with probability p,
//!                                           calls are retried with backoff,
//!                                           and disjuncts whose source stays
//!                                           down are dropped and reported
//!                                           (`answer` is an alias of `run`)
//! lapq contain <program.lap> <P> <Q>       containment between two queries
//! lapq mediate <views.lap> <query.lap> <facts.lap>
//!                                           GAV mediator pipeline
//! lapq optimize <program.lap> [facts.lap]   cost-based plan ordering and
//!                                           plan minimization
//! lapq profile <program.lap> <facts.lap>    EXPLAIN ANALYZE: per-literal
//!                                           call/row/binding profile
//! lapq replay <journal.json>                re-run a recorded query from
//!                                           its flight-recorder journal,
//!                                           reproducing the original
//!                                           outcome bit for bit
//! lapq report <journal.json>                per-source / per-operator
//!                                           latency and row tables
//! lapq calibrate <journal.json…> --out <profile.json>
//!                                           fold journals into per-source
//!                                           calibrated statistics
//! lapq obs-validate <file.json>             check an exported snapshot,
//!                                           journal, chrome trace, or
//!                                           feedback profile
//! lapq query-daemon <program.lap> <facts.lap> --addr <host:port>
//!                                           run the query on a `lapd`
//!                                           daemon; output is byte-
//!                                           identical to `lapq run`
//! lapq daemon-ctl <host:port> <ping|stats|shutdown>
//!                                           control a running daemon
//! lapq bench-daemon --addr <host:port> [--clients <n>] [--requests <n>]
//!                                           concurrent mixed-workload
//!                                           benchmark against a daemon
//! ```
//!
//! Every command additionally accepts `--trace` (print the span tree and
//! metric counters to stderr when done) and `--metrics-json <file>` (write
//! the same snapshot as JSON). The flight recorder is engaged by
//! `--journal <file>` (structured event journal with captured inputs and
//! rows — replayable with `lapq replay`), `--chrome-trace <file>`
//! (Perfetto / `chrome://tracing` loadable trace), `--journal-capacity
//! <n>` (ring size), and `--journal-sample <n>` (record every n-th source
//! call). `run`/`answer`/`explain` accept `--feedback <profile.json>` (a
//! `lapq calibrate` output): plan bodies are re-ordered under the
//! journal-calibrated cost model before execution, and `explain` annotates
//! each operator with both the static and the calibrated estimate. A
//! program file holds access-pattern declarations and rules (see
//! README); a facts file holds ground atoms (`B(1, "tolkien", "lotr").`).

mod cli;

use cli::CliArgs;
use lap::core::{
    answer_star_obs_cfg, answer_star_planned_obs_cfg, answer_star_replay_cfg,
    answer_star_resilient_cfg, answer_star_resilient_planned_cfg, answer_star_with_domain,
    feasible_detailed_with,
    is_executable, is_orderable, render_answer_report, render_outcome, AnswerOutcome,
    AnswerReport, ContainmentEngine, DecisionPath, EngineConfig,
};
use lap::engine::{
    display_tuple, Database, ExecConfig, FaultConfig, ReplaySource, ResilienceConfig, RetryPolicy,
    MAX_BATCH_WIDTH, MAX_IO_WORKERS,
};
use lap::ir::{parse_program, Program, UnionQuery};
use lap::obs::{
    chrome_trace, render_report, render_text, validate_chrome_trace, FeedbackStore,
    JournalConfig, JournalSnapshot, Json, JsonSink, Recorder, Sink,
};
use lap::planner::{optimize_plan_pair, CostModel, Strategy};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("lapq: {msg}");
            eprintln!();
            eprintln!("usage:");
            eprintln!("  lapq check <program.lap> [--constraints <sigma.lap>] [--parallel] [--cache] [--trace] [--metrics-json <file>]");
            eprintln!("  lapq explain <program.lap> [--feedback <profile.json>] [--batch-width <n>] [--parallel] [--cache] [--trace] [--metrics-json <file>]");
            eprintln!("  lapq plan  <program.lap> [--trace] [--metrics-json <file>]");
            eprintln!("  lapq run   <program.lap> <facts.lap> [--domain <budget>] [--trace] [--metrics-json <file>]");
            eprintln!("             [--fault-rate <p>] [--fault-seed <n>] [--latency-ms <n>] [--timeout-ms <n>] [--retry <n>] [--retry-budget-ms <n>] [--io-workers <n>] [--batch-width <n>]");
            eprintln!("             [--journal <file>] [--journal-capacity <n>] [--journal-sample <n>] [--chrome-trace <file>]");
            eprintln!("             [--feedback <profile.json>]");
            eprintln!("  lapq answer  (alias of run)");
            eprintln!("  lapq replay <journal.json> [--trace] [--metrics-json <file>]");
            eprintln!("  lapq report <journal.json>");
            eprintln!("  lapq calibrate <journal.json>... --out <profile.json>");
            eprintln!("  lapq contain <program.lap> <P> <Q> [--parallel] [--cache] [--trace] [--metrics-json <file>]");
            eprintln!("  lapq mediate <views.lap> <query.lap> <facts.lap> [--parallel] [--cache] [--trace] [--metrics-json <file>]");
            eprintln!("  lapq optimize <program.lap> [facts.lap] [--trace] [--metrics-json <file>]");
            eprintln!("  lapq profile <program.lap> <facts.lap> [--batch-width <n>] [--io-workers <n>] [--trace] [--metrics-json <file>]");
            eprintln!("  lapq obs-validate <metrics|journal|chrome-trace|feedback .json>");
            eprintln!("  lapq query-daemon <program.lap> <facts.lap> --addr <host:port> [run's resilience/executor flags]");
            eprintln!("  lapq daemon-ctl <host:port> <{DAEMON_CTL_OPS}>");
            eprintln!("  lapq bench-daemon --addr <host:port> [--clients <n>] [--requests <n>] [run's resilience/executor flags]");
            ExitCode::FAILURE
        }
    }
}

fn run(raw: &[String]) -> Result<(), String> {
    let args = CliArgs::parse(raw)?;
    let cmd = args.require(0, "missing command")?.to_owned();
    let recorder = match (journal_config_from_args(&args)?, args.flag("--trace")) {
        (Some(cfg), true) => Recorder::with_tracing_and_journal(cfg),
        (Some(cfg), false) => Recorder::with_journal(cfg),
        (None, true) => Recorder::with_tracing(),
        (None, false) if args.value("--metrics-json").is_some() => Recorder::new(),
        (None, false) => Recorder::disabled(),
    };
    dispatch(&cmd, &args, &recorder)?;
    export(&recorder, &args)
}

/// Valued flags that engage the flight recorder.
const JOURNAL_FLAGS: &[&str] = &[
    "--journal",
    "--journal-capacity",
    "--journal-sample",
    "--chrome-trace",
];

/// Builds the journal configuration selected by the journal flags, or
/// `None` when the flight recorder was not requested. `--journal` records
/// in replay fidelity (inputs and rows captured); `--chrome-trace` alone
/// records the light always-on tier.
fn journal_config_from_args(args: &CliArgs) -> Result<Option<JournalConfig>, String> {
    if !args.any_value(JOURNAL_FLAGS) {
        return Ok(None);
    }
    let mut cfg = if args.value("--journal").is_some() {
        JournalConfig::replay()
    } else {
        JournalConfig::light()
    };
    if let Some(cap) = args.value_u64("--journal-capacity")? {
        if cap == 0 {
            return Err("--journal-capacity must be at least 1".to_owned());
        }
        cfg.capacity = cap as usize;
    }
    if let Some(every) = args.value_u64("--journal-sample")? {
        if every == 0 {
            return Err("--journal-sample must be at least 1".to_owned());
        }
        cfg.sample_every = every;
    }
    Ok(Some(cfg))
}

fn dispatch(cmd: &str, args: &CliArgs, recorder: &Recorder) -> Result<(), String> {
    match cmd {
        "check" => check(
            args.require(1, "check needs a program file")?,
            args.value("--constraints"),
            &engine_from_args(args, recorder),
            recorder,
        ),
        "explain" => explain_cmd(
            args.require(1, "explain needs a program file")?,
            feedback_from_args(args)?.as_ref(),
            exec_config_from_args(args)?,
            &engine_from_args(args, recorder),
            recorder,
        ),
        "plan" => plan(args.require(1, "plan needs a program file")?, recorder),
        "run" | "answer" => run_query(
            args.require(1, "run needs a program file")?,
            args.require(2, "run needs a facts file")?,
            args.value_u64("--domain")?,
            resilience_from_args(args)?.as_ref(),
            exec_config_from_args(args)?,
            feedback_from_args(args)?.as_ref(),
            recorder,
        ),
        "profile" => profile(
            args.require(1, "profile needs a program file")?,
            args.require(2, "profile needs a facts file")?,
            exec_config_from_args(args)?,
            recorder,
        ),
        "optimize" => optimize(
            args.require(1, "optimize needs a program file")?,
            args.positional(2),
            recorder,
        ),
        "mediate" => mediate(
            args.require(1, "mediate needs a views file")?,
            args.require(2, "mediate needs a query file")?,
            args.require(3, "mediate needs a facts file")?,
            args,
            recorder,
        ),
        "contain" => containment(
            args.require(1, "contain needs a program file")?,
            args.require(2, "contain needs the name of P")?,
            args.require(3, "contain needs the name of Q")?,
            &engine_from_args(args, recorder),
            recorder,
        ),
        "query-daemon" => query_daemon(
            args.require(1, "query-daemon needs a program file")?,
            args.require(2, "query-daemon needs a facts file")?,
            args.value("--addr").ok_or("query-daemon needs --addr <host:port>")?,
            args,
        ),
        "daemon-ctl" => daemon_ctl(
            args.require(1, "daemon-ctl needs <host:port>")?,
            args.require(2, &format!("daemon-ctl needs an op: {DAEMON_CTL_OPS}"))?,
        ),
        "bench-daemon" => bench_daemon(
            args.value("--addr").ok_or("bench-daemon needs --addr <host:port>")?,
            args,
        ),
        "replay" => replay_cmd(args.require(1, "replay needs a journal file")?, recorder),
        "report" => report_cmd(args.require(1, "report needs a journal file")?),
        "calibrate" => calibrate_cmd(args),
        "obs-validate" => obs_validate(args.require(1, "obs-validate needs a json file")?),
        other => Err(format!("unknown command {other:?}")),
    }
}

/// Valued flags that switch `run`/`answer` into resilient (fault-injected)
/// execution when any of them is present.
const RESILIENCE_FLAGS: &[&str] = &[
    "--fault-rate",
    "--fault-seed",
    "--latency-ms",
    "--timeout-ms",
    "--retry",
    "--retry-budget-ms",
    "--io-workers",
];

/// Parses `--io-workers` and `--batch-width` into an [`ExecConfig`],
/// defaulting to serial I/O at the executor's default width when the
/// flags are absent. Zero is rejected for both, like out-of-range worker
/// counts.
fn exec_config_from_args(args: &CliArgs) -> Result<ExecConfig, String> {
    let mut cfg = ExecConfig::default();
    if let Some(n) = args.value_u64("--io-workers")? {
        if n == 0 || n > MAX_IO_WORKERS as u64 {
            return Err(format!(
                "--io-workers must be in [1, {MAX_IO_WORKERS}], got {n}"
            ));
        }
        cfg = cfg.with_io_workers(n as usize);
    }
    if let Some(n) = args.value_u64("--batch-width")? {
        if n == 0 || n > MAX_BATCH_WIDTH as u64 {
            return Err(format!(
                "--batch-width must be in [1, {MAX_BATCH_WIDTH}], got {n}"
            ));
        }
        cfg.batch_size = n as usize;
    }
    Ok(cfg)
}

/// Builds the fault + retry profile selected by the resilience flags, or
/// `None` when no resilience flag was given (plain ANSWER\* execution).
fn resilience_from_args(args: &CliArgs) -> Result<Option<ResilienceConfig>, String> {
    if !args.any_value(RESILIENCE_FLAGS) {
        return Ok(None);
    }
    let rate = args.value_f64("--fault-rate")?.unwrap_or(0.0);
    if !(0.0..=1.0).contains(&rate) {
        return Err(format!("--fault-rate must be in [0, 1], got {rate}"));
    }
    let fault = FaultConfig {
        error_rate: rate,
        latency_ms: args.value_u64("--latency-ms")?.unwrap_or(0),
        latency_jitter_ms: 0,
        timeout_ms: args.value_u64("--timeout-ms")?,
        seed: args.value_u64("--fault-seed")?.unwrap_or(0xC0FFEE),
    };
    let mut retry = RetryPolicy::standard();
    if let Some(n) = args.value_u64("--retry")? {
        if n == 0 || n > u32::MAX as u64 {
            return Err(format!("--retry must be in [1, {}], got {n}", u32::MAX));
        }
        retry = retry.with_max_attempts(n as u32);
    }
    if let Some(budget) = args.value_u64("--retry-budget-ms")? {
        retry = retry.with_deadline_ms(budget);
    }
    Ok(Some(ResilienceConfig { fault: Some(fault), retry }))
}

/// Loads and validates the `--feedback <profile.json>` calibration profile
/// (a `lapq calibrate` output), or `None` when the flag was not given.
fn feedback_from_args(args: &CliArgs) -> Result<Option<FeedbackStore>, String> {
    let Some(path) = args.value("--feedback") else {
        return Ok(None);
    };
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = lap::obs::json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let store = FeedbackStore::from_json(&doc).map_err(|e| format!("{path}: {e}"))?;
    store
        .validate()
        .map_err(|e| format!("{path}: invalid feedback profile: {e}"))?;
    Ok(Some(store))
}

/// Builds the containment engine selected by the global `--parallel` and
/// `--cache` flags (default: sequential, uncached — the library's
/// free-function behavior), reporting to `recorder`.
fn engine_from_args(args: &CliArgs, recorder: &Recorder) -> ContainmentEngine {
    ContainmentEngine::with_recorder(
        EngineConfig {
            parallel: args.flag("--parallel"),
            cache: args.flag("--cache"),
        },
        recorder,
    )
}

/// Prints the recorder snapshot per the `--trace` / `--metrics-json` flags
/// and writes the flight-recorder exports (`--journal`, `--chrome-trace`).
fn export(recorder: &Recorder, args: &CliArgs) -> Result<(), String> {
    if let Some(journal) = recorder.journal() {
        let snap = journal.snapshot();
        if let Some(path) = args.value("--journal") {
            std::fs::write(path, snap.to_json().to_pretty())
                .map_err(|e| format!("cannot write {path}: {e}"))?;
        }
        if let Some(path) = args.value("--chrome-trace") {
            std::fs::write(path, chrome_trace(&snap).to_pretty())
                .map_err(|e| format!("cannot write {path}: {e}"))?;
        }
    }
    if !recorder.metrics_enabled() {
        return Ok(());
    }
    let snapshot = recorder.snapshot();
    if args.flag("--trace") {
        eprint!("{}", render_text(&snapshot));
    }
    if let Some(path) = args.value("--metrics-json") {
        let file = std::fs::File::create(path)
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        JsonSink::new(file)
            .export(&snapshot)
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    Ok(())
}

fn load(path: &str, recorder: &Recorder) -> Result<Program, String> {
    let _span = recorder.span("parse");
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_program(&text).map_err(|e| format!("{path}: {e}"))
}

fn check(
    path: &str,
    constraints_path: Option<&str>,
    engine: &ContainmentEngine,
    recorder: &Recorder,
) -> Result<(), String> {
    let program = load(path, recorder)?;
    if program.queries.is_empty() {
        return Err(format!("{path}: no queries defined"));
    }
    let constraints = match constraints_path {
        Some(cp) => {
            let text = std::fs::read_to_string(cp)
                .map_err(|e| format!("cannot read {cp}: {e}"))?;
            Some(
                lap::constraints::parse_constraints(&text, &program.schema)
                    .map_err(|e| format!("{cp}: {e}"))?,
            )
        }
        None => None,
    };
    for query in &program.queries {
        report_query(query, &program, engine)?;
        if let Some(cs) = &constraints {
            let under = lap::constraints::feasible_under(query, cs, &program.schema);
            println!("  under Σ:    feasible = {} ({:?})", under.feasible, under.decided_by);
            let pruned = lap::constraints::prune_unsatisfiable(query, cs);
            if pruned.disjuncts.len() != query.disjuncts.len() {
                println!(
                    "  Σ pruned {} of {} disjunct(s)",
                    query.disjuncts.len() - pruned.disjuncts.len(),
                    query.disjuncts.len()
                );
            }
            println!();
        }
    }
    Ok(())
}

fn report_query(
    query: &UnionQuery,
    program: &Program,
    engine: &ContainmentEngine,
) -> Result<(), String> {
    println!("query {}:", query.signature.0);
    for d in &query.disjuncts {
        println!("  {d}");
    }
    if !query.is_safe() {
        println!("  UNSAFE query (a variable does not occur positively); skipping analysis");
        return Ok(());
    }
    println!("  executable: {}", is_executable(query, &program.schema));
    println!("  orderable:  {}", is_orderable(query, &program.schema));
    let report = feasible_detailed_with(query, &program.schema, engine);
    let how = match report.decided_by {
        DecisionPath::PlansCoincide => "plans coincide — no containment check needed",
        DecisionPath::OverestimateHasNull => "overestimate has null — ans(Q) unsafe",
        DecisionPath::ContainmentCheck => "containment check ans(Q) ⊑ Q",
    };
    println!("  feasible:   {} ({how})", report.feasible);
    if let Some(stats) = &report.containment {
        println!(
            "  containment: {} recursive call(s), {} memo hit(s), {} mapping(s), {} worker(s), engine cache {}",
            stats.recursive_calls,
            stats.cache_hits,
            stats.mappings_checked,
            stats.parallel_workers,
            if stats.engine_cache_hits > 0 { "hit" } else { "miss" },
        );
    }
    if report.feasible {
        println!("  plan:");
        for part in &report.plans.over.parts {
            println!("    {}", part.display_with(&program.schema));
        }
    }
    println!();
    Ok(())
}

fn explain_cmd(
    path: &str,
    feedback: Option<&FeedbackStore>,
    exec: ExecConfig,
    engine: &ContainmentEngine,
    recorder: &Recorder,
) -> Result<(), String> {
    let program = load(path, recorder)?;
    if program.queries.is_empty() {
        return Err(format!("{path}: no queries defined"));
    }
    // `--batch-width` steers the estimated batch-window counts in the
    // operator annotations (calls/tuples are width-independent).
    let model = CostModel::new().with_batch_width(exec.batch_size);
    let calibrated = feedback.map(|store| model.calibrated(store));
    for query in &program.queries {
        println!("query {}:", query.signature.0);
        print!("{}", lap::core::explain_with(query, &program.schema, engine));
        // The lowered operator trees: what ANSWER* will actually run, with
        // the chosen access patterns and default-model cost estimates.
        // With `--feedback`, the bodies are re-ordered under the calibrated
        // model and every operator shows est (static) next to cal
        // (calibrated) — the two numbers explain *why* the plan changed.
        let pair = lap::core::plan_star(query, &program.schema);
        let physical = match &calibrated {
            Some(cal) => {
                let optimized =
                    optimize_plan_pair(&pair, &program.schema, cal, Strategy::Exhaustive);
                lap::planner::lower_dual(&optimized, &program.schema, &model, cal)
            }
            None => lap::planner::lower(&pair, &program.schema, &model),
        };
        println!("  physical plan (underestimate):");
        for line in physical.under.to_string().lines() {
            println!("    {line}");
        }
        println!("  physical plan (overestimate):");
        for line in physical.over.to_string().lines() {
            println!("    {line}");
        }
        println!();
    }
    println!("containment engine: {}", engine.stats());
    Ok(())
}

fn plan(path: &str, recorder: &Recorder) -> Result<(), String> {
    let program = load(path, recorder)?;
    for query in &program.queries {
        let pair = lap::core::plan_star_obs(query, &program.schema, recorder);
        println!("query {}:", query.signature.0);
        println!("  underestimate Qu:");
        for p in &pair.under.parts {
            println!("    {}", p.display_with(&program.schema));
        }
        if pair.under.is_false() {
            println!("    {} :- false.", pair.under.head);
        }
        println!("  overestimate Qo:");
        for p in &pair.over.parts {
            println!("    {}", p.display_with(&program.schema));
        }
        if pair.over.is_false() {
            println!("    {} :- false.", pair.over.head);
        }
        println!();
    }
    Ok(())
}

/// Prints the body of an [`AnswerReport`]: certain answers, the
/// completeness verdict, possible extra tuples, and call statistics.
/// Delegates to the shared renderer so the daemon and the CLI cannot
/// drift apart byte-wise.
fn print_answer_report(rep: &AnswerReport) {
    print!("{}", render_answer_report(rep));
}

/// Prints the resilience tail of an [`AnswerOutcome`]: degraded disjuncts
/// and retry/failure/virtual-clock totals. Shared by `run` (resilient
/// mode) and `replay`, whose outputs must match byte for byte — and with
/// the daemon, via the shared renderer.
fn print_outcome(outcome: &AnswerOutcome) {
    print!("{}", render_outcome(outcome));
}

fn run_query(
    program_path: &str,
    facts_path: &str,
    domain: Option<u64>,
    resilience: Option<&ResilienceConfig>,
    cfg: ExecConfig,
    feedback: Option<&FeedbackStore>,
    recorder: &Recorder,
) -> Result<(), String> {
    let text = std::fs::read_to_string(program_path)
        .map_err(|e| format!("cannot read {program_path}: {e}"))?;
    let program = {
        let _span = recorder.span("parse");
        parse_program(&text).map_err(|e| format!("{program_path}: {e}"))?
    };
    // The journal carries the full program text so `lapq replay` can
    // re-derive the schema and plans without the original files.
    if let Some(journal) = recorder.journal() {
        journal.merge_meta([("program", Json::str(text.as_str()))]);
    }
    let facts = std::fs::read_to_string(facts_path)
        .map_err(|e| format!("cannot read {facts_path}: {e}"))?;
    let db = Database::from_facts(&facts).map_err(|e| format!("{facts_path}: {e}"))?;
    let calibrated = feedback.map(|store| CostModel::new().calibrated(store));
    for query in &program.queries {
        println!("query {}:", query.signature.0);
        // With `--feedback`, re-order the plan bodies under the calibrated
        // model before executing — same answers, cheaper call schedule.
        let planned = calibrated.as_ref().map(|cal| {
            let pair = lap::core::plan_star(query, &program.schema);
            optimize_plan_pair(&pair, &program.schema, cal, Strategy::Exhaustive)
        });
        if let Some(res) = resilience {
            let outcome = match &planned {
                Some(plans) => answer_star_resilient_planned_cfg(
                    query, plans, &program.schema, &db, recorder, res, cfg,
                ),
                None => answer_star_resilient_cfg(query, &program.schema, &db, recorder, res, cfg),
            }
            .map_err(|e| format!("evaluating {}: {e}", query.signature.0))?;
            print_outcome(&outcome);
            continue;
        }
        let rep = match &planned {
            Some(plans) => {
                answer_star_planned_obs_cfg(query, plans, &program.schema, &db, recorder, cfg)
            }
            None => answer_star_obs_cfg(query, &program.schema, &db, recorder, cfg),
        }
        .map_err(|e| format!("evaluating {}: {e}", query.signature.0))?;
        print_answer_report(&rep);
        if recorder.metrics_enabled() {
            // Observability run: also record the FEASIBLE decision so the
            // exported span tree covers the whole pipeline (parse →
            // answerable → plan* → feasible → answer*), not just ANSWER*.
            let engine = ContainmentEngine::with_recorder(EngineConfig::default(), recorder);
            let _ = feasible_detailed_with(query, &program.schema, &engine);
        }
        if let Some(budget) = domain {
            let imp = answer_star_with_domain(query, &program.schema, &db, budget)
                .map_err(|e| format!("domain refinement: {e}"))?;
            let extra: Vec<String> = imp
                .improved_under
                .difference(&imp.base.under)
                .map(|t| display_tuple(t))
                .collect();
            println!(
                "  -- dom(x) refinement recovered {} extra certain answer(s){}{} ({} calls, fixpoint: {})",
                extra.len(),
                if extra.is_empty() { "" } else { ": " },
                extra.join(", "),
                imp.domain_calls,
                imp.domain_complete,
            );
        }
        println!();
    }
    Ok(())
}

/// Maps the resilience/executor flags onto daemon [`QueryOptions`] — the
/// same flags `run` takes, so `lapq query-daemon` output can be `cmp`ed
/// against one-shot `lapq run` byte for byte.
fn query_options_from_args(args: &CliArgs) -> Result<lap::proto::QueryOptions, String> {
    Ok(lap::proto::QueryOptions {
        io_workers: args.value_u64("--io-workers")?,
        batch_width: args.value_u64("--batch-width")?,
        fault_rate: args.value_f64("--fault-rate")?,
        fault_seed: args.value_u64("--fault-seed")?,
        latency_ms: args.value_u64("--latency-ms")?,
        timeout_ms: args.value_u64("--timeout-ms")?,
        retry: args.value_u64("--retry")?,
        deadline_ms: args.value_u64("--retry-budget-ms")?,
    })
}

/// `lapq query-daemon <program> <facts> --addr <host:port>`: ship the
/// files to a running `lapd` and print the daemon's answer text verbatim.
fn query_daemon(
    program_path: &str,
    facts_path: &str,
    addr: &str,
    args: &CliArgs,
) -> Result<(), String> {
    let program = std::fs::read_to_string(program_path)
        .map_err(|e| format!("cannot read {program_path}: {e}"))?;
    let facts = std::fs::read_to_string(facts_path)
        .map_err(|e| format!("cannot read {facts_path}: {e}"))?;
    let options = query_options_from_args(args)?;
    let mut client = lap::proto::Client::connect(addr)
        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    match client.query(&program, &facts, options).map_err(|e| format!("daemon: {e}"))? {
        lap::proto::Response::Ok { text, .. } => {
            print!("{text}");
            Ok(())
        }
        lap::proto::Response::Error { code, message, .. } => {
            Err(format!("daemon error ({code}): {message}"))
        }
    }
}

/// Every op `daemon-ctl` speaks — the single source of truth for the
/// usage string and both unknown-op errors.
const DAEMON_CTL_OPS: &str = "ping | stats | profile | health | recalibrate | shutdown";

/// `lapq daemon-ctl <host:port> <op>`: one control frame, print the
/// response. `profile` prints the structured payload (the live feedback
/// profile JSON, pipeable into `lapq obs-validate`); every other op
/// prints the response text.
fn daemon_ctl(addr: &str, op: &str) -> Result<(), String> {
    let mut client = lap::proto::Client::connect(addr)
        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let resp = match op {
        "ping" => client.ping(),
        "stats" => client.stats(),
        "profile" => client.profile(),
        "health" => client.health(),
        "recalibrate" => client.recalibrate(),
        "shutdown" => client.shutdown(),
        other => {
            return Err(format!("unknown daemon-ctl op {other:?} ({DAEMON_CTL_OPS})"))
        }
    }
    .map_err(|e| format!("daemon: {e}"))?;
    match resp {
        lap::proto::Response::Ok { text, data, .. } => {
            if op == "profile" {
                println!("{}", data.to_pretty());
            } else if text.ends_with('\n') {
                print!("{text}");
            } else {
                println!("{text}");
            }
            Ok(())
        }
        lap::proto::Response::Error { code, message, .. } => {
            Err(format!("daemon error ({code}): {message}"))
        }
    }
}

/// The mixed workload `bench-daemon` cycles through: a feasible
/// negation query, an infeasible union, a plain scan, and a two-query
/// program — repeated texts by design, so the plan cache carries the load.
const BENCH_SCENARIOS: &[(&str, &str)] = &[
    (
        "B^ioo. B^oio. C^oo. L^o.\nQ(i, a, t) :- B(i, a, t), C(i, a), not L(i).",
        r#"B(1, "a", "t1"). B(2, "b", "t2"). C(1, "a"). C(2, "b"). L(1)."#,
    ),
    (
        "S^o. R^oo. B^ii. T^oo.\nQ(x, y) :- not S(z), R(x, z), B(x, y).\nQ(x, y) :- T(x, y).",
        "R(1, 10). S(99). T(7, 8). B(1, 5).",
    ),
    ("C^oo.\nQ(i) :- C(i, a).", r#"C(1, "a"). C(2, "b"). C(3, "c")."#),
    (
        "C^oo. F^o.\nQ(i) :- C(i, a).\nP(x) :- F(x).",
        r#"C(1, "a"). F(9). F(10)."#,
    ),
];

/// `lapq bench-daemon --addr <host:port> [--clients n] [--requests n]`:
/// hammer a running daemon with concurrent clients on a mixed workload
/// and report throughput, latency percentiles, and the plan-cache hit
/// rate.
fn bench_daemon(addr: &str, args: &CliArgs) -> Result<(), String> {
    use lap::proto::{Client, ErrorCode, Response};
    let clients = args.value_u64("--clients")?.unwrap_or(32).max(1) as usize;
    let requests = args.value_u64("--requests")?.unwrap_or(25).max(1) as usize;
    let options = query_options_from_args(args)?;

    struct ClientTally {
        latencies_us: Vec<u64>,
        ok: u64,
        quota: u64,
        errors: u64,
    }

    let started = std::time::Instant::now();
    let tallies: Vec<ClientTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let options = options.clone();
                scope.spawn(move || {
                    let mut tally = ClientTally {
                        latencies_us: Vec::with_capacity(requests),
                        ok: 0,
                        quota: 0,
                        errors: 0,
                    };
                    let Ok(mut client) = Client::connect(addr) else {
                        tally.errors += requests as u64;
                        return tally;
                    };
                    for r in 0..requests {
                        let (program, facts) =
                            BENCH_SCENARIOS[(c + r) % BENCH_SCENARIOS.len()];
                        let t0 = std::time::Instant::now();
                        match client.query(program, facts, options.clone()) {
                            Ok(Response::Ok { .. }) => {
                                tally.ok += 1;
                                tally.latencies_us.push(t0.elapsed().as_micros() as u64);
                            }
                            Ok(Response::Error { code: ErrorCode::Quota, .. }) => {
                                tally.quota += 1;
                            }
                            Ok(Response::Error { .. }) => tally.errors += 1,
                            Err(_) => {
                                // Transport failure (e.g. refused over
                                // capacity): the connection is gone.
                                tally.errors += (requests - r) as u64;
                                break;
                            }
                        }
                    }
                    tally
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("bench client thread")).collect()
    });
    let wall = started.elapsed();

    let mut latencies: Vec<u64> = Vec::new();
    let (mut ok, mut quota, mut errors) = (0u64, 0u64, 0u64);
    for t in tallies {
        latencies.extend(t.latencies_us);
        ok += t.ok;
        quota += t.quota;
        errors += t.errors;
    }
    latencies.sort_unstable();
    let pct = |p: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let idx = ((p / 100.0) * (latencies.len() - 1) as f64).round() as usize;
        latencies[idx] as f64 / 1000.0
    };
    let qps = if wall.as_secs_f64() > 0.0 { ok as f64 / wall.as_secs_f64() } else { 0.0 };

    println!("bench-daemon against {addr}:");
    println!("  clients: {clients}, requests per client: {requests}");
    println!("  ok: {ok}, quota rejections: {quota}, errors: {errors}");
    println!("  wall time: {:.1} ms, throughput: {qps:.0} qps", wall.as_secs_f64() * 1000.0);
    println!(
        "  latency ms: p50 {:.2}, p95 {:.2}, p99 {:.2}, max {:.2}",
        pct(50.0),
        pct(95.0),
        pct(99.0),
        latencies.last().map_or(0.0, |&v| v as f64 / 1000.0),
    );
    // One stats frame for the server-side view of the same run.
    if let Ok(mut ctl) = Client::connect(addr) {
        if let Ok(Response::Ok { data, .. }) = ctl.stats() {
            if let Some(cache) = data.get("plan_cache") {
                let g = |k: &str| cache.get(k).and_then(Json::as_u64).unwrap_or(0);
                let rate = cache.get("hit_rate").and_then(Json::as_f64).unwrap_or(0.0);
                println!(
                    "  plan cache: {} hits, {} misses, {} evictions ({:.1}% hit rate)",
                    g("hits"),
                    g("misses"),
                    g("evictions"),
                    rate * 100.0,
                );
            }
            // Server-side percentiles from the shared recorder histograms:
            // gate wait isolates admission queueing, request latency is the
            // daemon's own view of the work (excludes client transport).
            if let Some(latency) = data.get("latency") {
                let line = |name: &str, key: &str| {
                    let Some(h) = latency.get(key) else { return };
                    let g = |k: &str| h.get(k).and_then(Json::as_f64).unwrap_or(0.0);
                    println!(
                        "  server {name} ms: p50 {:.2}, p95 {:.2}, p99 {:.2} \
                         ({} samples)",
                        g("p50") / 1000.0,
                        g("p95") / 1000.0,
                        g("p99") / 1000.0,
                        h.get("count").and_then(Json::as_u64).unwrap_or(0),
                    );
                };
                line("gate wait", "gate_wait_us");
                line("request", "request_us");
            }
        }
    }
    Ok(())
}

fn profile(
    program_path: &str,
    facts_path: &str,
    cfg: ExecConfig,
    recorder: &Recorder,
) -> Result<(), String> {
    use lap::engine::{execute_physical_union_profiled, SourceRegistry};
    let program = load(program_path, recorder)?;
    let facts = std::fs::read_to_string(facts_path)
        .map_err(|e| format!("cannot read {facts_path}: {e}"))?;
    let db = Database::from_facts(&facts).map_err(|e| format!("{facts_path}: {e}"))?;
    for query in &program.queries {
        println!("query {}:", query.signature.0);
        let pair = lap::core::plan_star_obs(query, &program.schema, recorder);
        let physical = pair.over.lower(&program.schema);
        let mut reg = SourceRegistry::new(&db, &program.schema)
            .recording(recorder)
            .with_io_workers(cfg.io_workers);
        let (_, prof) = execute_physical_union_profiled(&physical, &mut reg, cfg)
            .map_err(|e| format!("evaluating: {e}"))?;
        println!("{prof}");
        println!("total source usage (positive calls): {}", reg.stats());
        println!("membership probes (negative literals, disjoint): {}", reg.membership_probes());
        println!();
    }
    Ok(())
}

fn optimize(
    program_path: &str,
    facts_path: Option<&str>,
    recorder: &Recorder,
) -> Result<(), String> {
    use lap::planner::{best_order, estimate_cost, minimal_executable_plan, CostModel};
    let program = load(program_path, recorder)?;
    let model = match facts_path {
        Some(path) => {
            let facts = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {path}: {e}"))?;
            let db = Database::from_facts(&facts).map_err(|e| format!("{path}: {e}"))?;
            CostModel::from_database(&db)
        }
        None => CostModel::new(),
    };
    let engine = ContainmentEngine::with_recorder(EngineConfig::default(), recorder);
    for query in &program.queries {
        println!("query {}:", query.signature.0);
        let report = feasible_detailed_with(query, &program.schema, &engine);
        if !report.feasible {
            println!("  not feasible — nothing to optimize (try `lapq explain`)");
            continue;
        }
        for part in &report.plans.over.parts {
            let base = estimate_cost(&part.cq, &program.schema, &model);
            println!("  plan:      {}", part.cq);
            if let Some(c) = base {
                println!("             est. {:.1} calls, {:.1} tuples", c.calls, c.tuples);
            }
            if let Some((better, cost)) = best_order(&part.cq, &program.schema, &model) {
                println!("  optimized: {}", better);
                println!("             est. {:.1} calls, {:.1} tuples", cost.calls, cost.tuples);
            }
        }
        if let Some(min_plan) = minimal_executable_plan(query, &program.schema) {
            println!("  minimal equivalent plan:");
            for d in &min_plan.disjuncts {
                println!("    {d}");
            }
        }
        println!();
    }
    Ok(())
}

fn mediate(
    views_path: &str,
    query_path: &str,
    facts_path: &str,
    args: &CliArgs,
    recorder: &Recorder,
) -> Result<(), String> {
    let views_text = std::fs::read_to_string(views_path)
        .map_err(|e| format!("cannot read {views_path}: {e}"))?;
    let mediator = lap::mediator::Mediator::from_program(&views_text)
        .map_err(|e| e.to_string())?
        .with_recorder(recorder)
        .with_engine(EngineConfig {
            parallel: args.flag("--parallel"),
            cache: args.flag("--cache"),
        });
    let query_program = load(query_path, recorder)?;
    let facts = std::fs::read_to_string(facts_path)
        .map_err(|e| format!("cannot read {facts_path}: {e}"))?;
    let db = Database::from_facts(&facts).map_err(|e| format!("{facts_path}: {e}"))?;
    for query in &query_program.queries {
        println!("global query {}:", query.signature.0);
        let (plan, report) = mediator.answer(query, &db).map_err(|e| e.to_string())?;
        println!("  unfolded into {} disjunct(s); feasible: {} ({:?})",
            plan.unfolded.disjuncts.len(),
            plan.feasibility.feasible,
            plan.feasibility.decided_by);
        for t in &report.under {
            println!("  {}", display_tuple(t));
        }
        if report.is_complete() {
            println!("  -- answer is complete");
        } else {
            println!("  -- answer is not known to be complete");
            for t in &report.delta {
                println!("     possible: {}", display_tuple(t));
            }
        }
        println!("  -- {}", report.stats);
        println!();
    }
    Ok(())
}

fn containment(
    path: &str,
    p_name: &str,
    q_name: &str,
    engine: &ContainmentEngine,
    recorder: &Recorder,
) -> Result<(), String> {
    let program = load(path, recorder)?;
    let p = program
        .query(p_name)
        .ok_or_else(|| format!("no query named {p_name} in {path}"))?;
    let q = program
        .query(q_name)
        .ok_or_else(|| format!("no query named {q_name} in {path}"))?;
    if p.signature.0.arity != q.signature.0.arity {
        return Err(format!(
            "{p_name} and {q_name} have different arities; containment is undefined"
        ));
    }
    // Containment compares head tuples; align the head predicates.
    let p_aligned = rename_head(p, q);
    let _span = recorder.span("containment");
    println!("{} ⊑ {}: {}", p_name, q_name, engine.contained(&p_aligned, q));
    println!("{} ⊑ {}: {}", q_name, p_name, engine.contained(q, &p_aligned));
    Ok(())
}

/// Renames `p`'s head predicate to `q`'s so the containment machinery (which
/// compares same-signature queries) applies.
fn rename_head(p: &UnionQuery, q: &UnionQuery) -> UnionQuery {
    let mut out = p.clone();
    out.head.predicate = q.head.predicate;
    out.signature = q.signature;
    for d in &mut out.disjuncts {
        d.head.predicate = q.head.predicate;
    }
    out
}

/// Reads and parses a flight-recorder journal document.
fn load_journal(path: &str) -> Result<JournalSnapshot, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = lap::obs::json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    JournalSnapshot::from_json(&doc).map_err(|e| format!("{path}: {e}"))
}

/// Re-runs a recorded query from its journal: the program text, retry
/// policy, and every transport-level source outcome come from the journal,
/// so the run reproduces the original answers, degradations, retry counts,
/// and virtual clock bit for bit — faults included, no live database
/// needed.
fn replay_cmd(path: &str, recorder: &Recorder) -> Result<(), String> {
    let snap = load_journal(path)?;
    snap.validate().map_err(|e| format!("{path}: invalid journal: {e}"))?;
    let program_text = snap
        .meta
        .get("program")
        .and_then(Json::as_str)
        .ok_or_else(|| {
            format!("{path}: no \"program\" metadata — record with `lapq run … --journal`")
        })?;
    let program =
        parse_program(program_text).map_err(|e| format!("{path}: recorded program: {e}"))?;
    let retry = match snap.meta.get("retry") {
        Some(doc) if !matches!(doc, Json::Null) => {
            RetryPolicy::from_json(doc).map_err(|e| format!("{path}: {e}"))?
        }
        _ => RetryPolicy::default(),
    };
    // Replay honors the recorded `io_workers`, `batch_width`, and
    // `columnar` executor choice so the overlapped virtual clock, the
    // batch windows, and therefore `print_outcome` reproduce byte for
    // byte.
    let io_workers = snap
        .meta
        .get("io_workers")
        .and_then(Json::as_u64)
        .unwrap_or(1) as usize;
    let mut cfg = ExecConfig::default().with_io_workers(io_workers);
    if let Some(width) = snap.meta.get("batch_width").and_then(Json::as_u64) {
        cfg.batch_size = (width as usize).max(1);
    }
    if let Some(Json::Bool(columnar)) = snap.meta.get("columnar") {
        cfg.columnar = *columnar;
    }
    let source = ReplaySource::from_journal(&snap).map_err(|e| format!("{path}: {e}"))?;
    for query in &program.queries {
        println!("query {}:", query.signature.0);
        let outcome =
            answer_star_replay_cfg(query, &program.schema, source.clone(), retry, recorder, cfg)
                .map_err(|e| format!("replaying {}: {e}", query.signature.0))?;
        print_outcome(&outcome);
    }
    if source.mismatches() > 0 || source.remaining() > 0 {
        return Err(format!(
            "replay diverged from the recording: {} mismatched call(s), {} recorded call(s) \
             never consumed",
            source.mismatches(),
            source.remaining()
        ));
    }
    if source.out_of_order() > 0 {
        eprintln!(
            "lapq: note: {} call(s) were consumed out of recorded order",
            source.out_of_order()
        );
    }
    Ok(())
}

/// Rolls a journal up into per-source and per-operator tables with
/// p50/p95/p99 latency estimates.
fn report_cmd(path: &str) -> Result<(), String> {
    let snap = load_journal(path)?;
    print!("{}", render_report(&snap));
    Ok(())
}

/// Folds one or more flight-recorder journals into a calibrated feedback
/// profile (per-source, per-access-pattern call statistics) and writes it
/// to `--out`. The profile feeds `--feedback` on `run`/`answer`/`explain`.
fn calibrate_cmd(args: &CliArgs) -> Result<(), String> {
    let out = args
        .value("--out")
        .ok_or("calibrate needs --out <profile.json>")?;
    let mut store = FeedbackStore::new();
    let mut i = 1;
    let mut folded = 0usize;
    while let Some(path) = args.positional(i) {
        let snap = load_journal(path)?;
        snap.validate().map_err(|e| format!("{path}: invalid journal: {e}"))?;
        store.fold(&snap);
        folded += 1;
        i += 1;
    }
    if folded == 0 {
        return Err("calibrate needs at least one journal file".to_owned());
    }
    store
        .validate()
        .map_err(|e| format!("calibration produced an invalid profile: {e}"))?;
    std::fs::write(out, store.to_json().to_pretty())
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    print!("{}", store.summary());
    println!("wrote {out}");
    Ok(())
}

/// Validates an exported observability document: a metrics snapshot
/// (`counters`/`histograms`/`spans`), a flight-recorder journal
/// (`events`/`emitted`, checked for monotone sequence, accounting, and
/// begin/end balance), a chrome trace (`traceEvents`, checked for
/// well-formed, balanced B/E events), or a feedback profile
/// (`feedback_version`/`profiles`, checked for rates in [0, 1], ordered
/// percentiles, consistent accounting, and exact JSON round-trip). The
/// shape is detected from the document's keys. Lets CI check every export
/// without python or jq.
fn obs_validate(path: &str) -> Result<(), String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = lap::obs::json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    if doc.get("traceEvents").is_some() {
        let n = validate_chrome_trace(&doc).map_err(|e| format!("{path}: {e}"))?;
        println!("{path}: ok (chrome trace, {n} event(s), balanced)");
        return Ok(());
    }
    if doc.get("feedback_version").is_some() && doc.get("profiles").is_some() {
        let store = FeedbackStore::from_json(&doc).map_err(|e| format!("{path}: {e}"))?;
        store.validate().map_err(|e| format!("{path}: {e}"))?;
        // Round-trip equality: serializing the parsed store must reproduce
        // a document that parses back to the same store.
        let reparsed = FeedbackStore::from_json(&store.to_json())
            .map_err(|e| format!("{path}: round-trip: {e}"))?;
        if reparsed != store {
            return Err(format!("{path}: feedback profile does not round-trip"));
        }
        println!(
            "{path}: ok (feedback profile, {} profile(s), {} fold(s))",
            store.profiles.len(),
            store.folds
        );
        return Ok(());
    }
    if doc.get("events").is_some() && doc.get("emitted").is_some() {
        let snap = JournalSnapshot::from_json(&doc).map_err(|e| format!("{path}: {e}"))?;
        let check = snap.validate().map_err(|e| format!("{path}: {e}"))?;
        println!(
            "{path}: ok (journal, {} event(s), {} begin(s)/{} end(s), {} lane(s), {} dropped)",
            check.events, check.begins, check.ends, check.lanes, snap.dropped
        );
        return Ok(());
    }
    let counters = doc
        .get("counters")
        .ok_or_else(|| format!("{path}: missing \"counters\" key"))?;
    let n_counters = match counters {
        Json::Obj(pairs) => pairs.len(),
        _ => return Err(format!("{path}: \"counters\" is not an object")),
    };
    let histograms = doc
        .get("histograms")
        .ok_or_else(|| format!("{path}: missing \"histograms\" key"))?;
    let n_histograms = match histograms {
        Json::Obj(pairs) => {
            for (name, h) in pairs {
                for key in ["count", "sum", "max", "buckets"] {
                    if h.get(key).is_none() {
                        return Err(format!(
                            "{path}: histogram {name:?} is missing {key:?}"
                        ));
                    }
                }
            }
            pairs.len()
        }
        _ => return Err(format!("{path}: \"histograms\" is not an object")),
    };
    let spans = doc
        .get("spans")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{path}: missing \"spans\" array"))?;
    fn check_span(span: &Json, path: &str) -> Result<u64, String> {
        let name = span
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{path}: span without a \"name\""))?;
        if span.get("elapsed_us").and_then(Json::as_f64).is_none() {
            return Err(format!("{path}: span {name:?} has no \"elapsed_us\""));
        }
        let children = span
            .get("children")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("{path}: span {name:?} has no \"children\" array"))?;
        let mut n = 1;
        for child in children {
            n += check_span(child, path)?;
        }
        Ok(n)
    }
    let mut n_spans = 0;
    for span in spans {
        n_spans += check_span(span, path)?;
    }
    println!(
        "{path}: ok ({n_counters} counter(s), {n_histograms} histogram(s), {n_spans} span(s))"
    );
    Ok(())
}
