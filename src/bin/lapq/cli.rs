//! Shared command-line parsing for `lapq`.
//!
//! The commands used to probe the raw argument list ad hoc
//! (`args.iter().any(|a| a == "--parallel")`, position-plus-one lookups for
//! valued flags). This module splits the argument vector exactly once into
//! positionals, boolean flags, and valued flags, rejecting unknown flags
//! and missing values up front so every command sees the same behavior.

use std::collections::{BTreeMap, BTreeSet};

/// Boolean flags accepted anywhere on the command line.
pub const BOOL_FLAGS: &[&str] = &["--parallel", "--cache", "--trace"];

/// Flags that consume the next argument as their value.
pub const VALUE_FLAGS: &[&str] = &[
    "--constraints",
    "--domain",
    "--metrics-json",
    "--fault-rate",
    "--fault-seed",
    "--latency-ms",
    "--timeout-ms",
    "--retry",
    "--retry-budget-ms",
    "--io-workers",
    "--batch-width",
    "--journal",
    "--journal-capacity",
    "--journal-sample",
    "--chrome-trace",
    "--feedback",
    "--out",
    "--addr",
    "--clients",
    "--requests",
];

/// An argument vector split into positionals and recognized flags.
///
/// `positional(0)` is the subcommand; flags may appear anywhere.
#[derive(Clone, Debug, Default)]
pub struct CliArgs {
    positionals: Vec<String>,
    flags: BTreeSet<String>,
    values: BTreeMap<String, String>,
}

impl CliArgs {
    /// Splits `args` into positionals and flags. Fails on a flag outside
    /// [`BOOL_FLAGS`]/[`VALUE_FLAGS`], a valued flag with no value, or any
    /// flag given twice — a repeated flag is always a typo or a stale
    /// shell history entry, and silently keeping the *last* occurrence
    /// (as a map insert would) runs a different configuration than the
    /// user reviewed.
    pub fn parse(args: &[String]) -> Result<CliArgs, String> {
        let mut out = CliArgs::default();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            if BOOL_FLAGS.contains(&arg.as_str()) {
                if !out.flags.insert(arg.clone()) {
                    return Err(format!("duplicate flag {arg}"));
                }
            } else if VALUE_FLAGS.contains(&arg.as_str()) {
                let value = it.next().ok_or_else(|| format!("{arg} needs a value"))?;
                if out.values.insert(arg.clone(), value.clone()).is_some() {
                    return Err(format!("duplicate flag {arg}"));
                }
            } else if arg.starts_with("--") {
                return Err(format!("unknown flag {arg}"));
            } else {
                out.positionals.push(arg.clone());
            }
        }
        Ok(out)
    }

    /// The `i`-th positional argument (0 = the subcommand), if present.
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positionals.get(i).map(String::as_str)
    }

    /// The `i`-th positional argument, or `missing` as the error message.
    pub fn require(&self, i: usize, missing: &str) -> Result<&str, String> {
        self.positional(i).ok_or_else(|| missing.to_owned())
    }

    /// Whether the boolean flag `name` was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.contains(name)
    }

    /// The value of the valued flag `name`, if given.
    pub fn value(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// The value of `name` parsed as a `u64`, if given.
    pub fn value_u64(&self, name: &str) -> Result<Option<u64>, String> {
        match self.value(name) {
            Some(raw) => raw
                .parse::<u64>()
                .map(Some)
                .map_err(|e| format!("bad {name} value: {e}")),
            None => Ok(None),
        }
    }

    /// The value of `name` parsed as an `f64`, if given.
    pub fn value_f64(&self, name: &str) -> Result<Option<f64>, String> {
        match self.value(name) {
            Some(raw) => raw
                .parse::<f64>()
                .map(Some)
                .map_err(|e| format!("bad {name} value: {e}")),
            None => Ok(None),
        }
    }

    /// Whether any of the listed valued flags was given.
    pub fn any_value(&self, names: &[&str]) -> bool {
        names.iter().any(|n| self.values.contains_key(*n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn splits_positionals_and_flags() {
        let a = CliArgs::parse(&args(&[
            "check",
            "prog.lap",
            "--parallel",
            "--constraints",
            "sigma.lap",
        ]))
        .unwrap();
        assert_eq!(a.positional(0), Some("check"));
        assert_eq!(a.positional(1), Some("prog.lap"));
        assert!(a.flag("--parallel"));
        assert!(!a.flag("--cache"));
        assert_eq!(a.value("--constraints"), Some("sigma.lap"));
    }

    #[test]
    fn flags_may_precede_positionals() {
        let a = CliArgs::parse(&args(&["--trace", "run", "p.lap", "f.lap"])).unwrap();
        assert!(a.flag("--trace"));
        assert_eq!(a.positional(0), Some("run"));
        assert_eq!(a.positional(2), Some("f.lap"));
    }

    #[test]
    fn missing_value_and_unknown_flag_fail() {
        assert!(CliArgs::parse(&args(&["run", "--domain"]))
            .unwrap_err()
            .contains("--domain needs a value"));
        assert!(CliArgs::parse(&args(&["run", "--frobnicate"]))
            .unwrap_err()
            .contains("unknown flag"));
    }

    #[test]
    fn duplicate_flags_are_a_parse_error() {
        // Regression: `--batch-width 4 --batch-width 0` used to silently
        // keep the last value; now any repeated flag fails up front.
        let err = CliArgs::parse(&args(&["run", "p.lap", "f.lap", "--batch-width", "4", "--batch-width", "0"]))
            .unwrap_err();
        assert!(err.contains("duplicate flag --batch-width"), "{err}");
        let err = CliArgs::parse(&args(&["check", "p.lap", "--trace", "--trace"])).unwrap_err();
        assert!(err.contains("duplicate flag --trace"), "{err}");
        // Same flag once is of course fine.
        assert!(CliArgs::parse(&args(&["run", "p.lap", "--batch-width", "4"])).is_ok());
    }

    #[test]
    fn u64_values_parse_or_explain() {
        let a = CliArgs::parse(&args(&["run", "--domain", "1000"])).unwrap();
        assert_eq!(a.value_u64("--domain").unwrap(), Some(1000));
        let bad = CliArgs::parse(&args(&["run", "--domain", "lots"])).unwrap();
        assert!(bad.value_u64("--domain").unwrap_err().contains("--domain"));
        assert_eq!(a.value_u64("--metrics-json").unwrap(), None);
    }
}
