//! `lapq` — command-line front end for the `lap` library.
//!
//! ```text
//! lapq check <program.lap> [--constraints <sigma.lap>]
//!                                           feasibility report per query
//! lapq plan  <program.lap>                 print PLAN*'s Qu and Qo
//! lapq run   <program.lap> <facts.lap>     ANSWER* over an instance
//!            [--domain <budget>]           …with dom(x) refinement
//! lapq contain <program.lap> <P> <Q>       containment between two queries
//! lapq mediate <views.lap> <query.lap> <facts.lap>
//!                                           GAV mediator pipeline
//! lapq optimize <program.lap> [facts.lap]   cost-based plan ordering and
//!                                           plan minimization
//! lapq profile <program.lap> <facts.lap>    EXPLAIN ANALYZE: per-literal
//!                                           call/row/binding profile
//! ```
//!
//! A program file holds access-pattern declarations and rules (see
//! README); a facts file holds ground atoms (`B(1, "tolkien", "lotr").`).

use lap::core::{
    answer_star, answer_star_with_domain, feasible_detailed_with, is_executable, is_orderable,
    Completeness, ContainmentEngine, DecisionPath, EngineConfig,
};
use lap::engine::{display_tuple, Database};
use lap::ir::{parse_program, Program, UnionQuery};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("lapq: {msg}");
            eprintln!();
            eprintln!("usage:");
            eprintln!("  lapq check <program.lap> [--parallel] [--cache]");
            eprintln!("  lapq explain <program.lap> [--parallel] [--cache]");
            eprintln!("  lapq plan  <program.lap>");
            eprintln!("  lapq run   <program.lap> <facts.lap> [--domain <budget>]");
            eprintln!("  lapq contain <program.lap> <P> <Q> [--parallel] [--cache]");
            eprintln!("  lapq mediate <views.lap> <query.lap> <facts.lap>");
            eprintln!("  lapq optimize <program.lap> [facts.lap]");
            eprintln!("  lapq profile <program.lap> <facts.lap>");
            ExitCode::FAILURE
        }
    }
}

/// Builds the containment engine selected by the global `--parallel` and
/// `--cache` flags (default: sequential, uncached — the library's
/// free-function behavior).
fn engine_from_args(args: &[String]) -> ContainmentEngine {
    ContainmentEngine::new(EngineConfig {
        parallel: args.iter().any(|a| a == "--parallel"),
        cache: args.iter().any(|a| a == "--cache"),
    })
}

fn constraints_arg(args: &[String]) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == "--constraints") {
        Some(i) => Ok(Some(
            args.get(i + 1)
                .ok_or("--constraints needs a file")?
                .clone(),
        )),
        None => Ok(None),
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let cmd = args.first().ok_or("missing command")?;
    match cmd.as_str() {
        "check" => check(
            args.get(1).ok_or("check needs a program file")?,
            constraints_arg(args)?.as_deref(),
            &engine_from_args(args),
        ),
        "explain" => explain_cmd(
            args.get(1).ok_or("explain needs a program file")?,
            &engine_from_args(args),
        ),
        "plan" => plan(args.get(1).ok_or("plan needs a program file")?),
        "run" => {
            let program = args.get(1).ok_or("run needs a program file")?;
            let facts = args.get(2).ok_or("run needs a facts file")?;
            let domain = match args.iter().position(|a| a == "--domain") {
                Some(i) => Some(
                    args.get(i + 1)
                        .ok_or("--domain needs a budget")?
                        .parse::<u64>()
                        .map_err(|e| format!("bad --domain value: {e}"))?,
                ),
                None => None,
            };
            run_query(program, facts, domain)
        }
        "profile" => {
            let program = args.get(1).ok_or("profile needs a program file")?;
            let facts = args.get(2).ok_or("profile needs a facts file")?;
            profile(program, facts)
        }
        "optimize" => {
            let program = args.get(1).ok_or("optimize needs a program file")?;
            optimize(program, args.get(2).map(String::as_str))
        }
        "mediate" => {
            let views = args.get(1).ok_or("mediate needs a views file")?;
            let query = args.get(2).ok_or("mediate needs a query file")?;
            let facts = args.get(3).ok_or("mediate needs a facts file")?;
            mediate(views, query, facts)
        }
        "contain" => {
            let file = args.get(1).ok_or("contain needs a program file")?;
            let p = args.get(2).ok_or("contain needs the name of P")?;
            let q = args.get(3).ok_or("contain needs the name of Q")?;
            containment(file, p, q, &engine_from_args(args))
        }
        other => Err(format!("unknown command {other:?}")),
    }
}

fn load(path: &str) -> Result<Program, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_program(&text).map_err(|e| format!("{path}: {e}"))
}

fn check(
    path: &str,
    constraints_path: Option<&str>,
    engine: &ContainmentEngine,
) -> Result<(), String> {
    let program = load(path)?;
    if program.queries.is_empty() {
        return Err(format!("{path}: no queries defined"));
    }
    let constraints = match constraints_path {
        Some(cp) => {
            let text = std::fs::read_to_string(cp)
                .map_err(|e| format!("cannot read {cp}: {e}"))?;
            Some(
                lap::constraints::parse_constraints(&text, &program.schema)
                    .map_err(|e| format!("{cp}: {e}"))?,
            )
        }
        None => None,
    };
    for query in &program.queries {
        report_query(query, &program, engine)?;
        if let Some(cs) = &constraints {
            let under = lap::constraints::feasible_under(query, cs, &program.schema);
            println!("  under Σ:    feasible = {} ({:?})", under.feasible, under.decided_by);
            let pruned = lap::constraints::prune_unsatisfiable(query, cs);
            if pruned.disjuncts.len() != query.disjuncts.len() {
                println!(
                    "  Σ pruned {} of {} disjunct(s)",
                    query.disjuncts.len() - pruned.disjuncts.len(),
                    query.disjuncts.len()
                );
            }
            println!();
        }
    }
    Ok(())
}

fn report_query(
    query: &UnionQuery,
    program: &Program,
    engine: &ContainmentEngine,
) -> Result<(), String> {
    println!("query {}:", query.signature.0);
    for d in &query.disjuncts {
        println!("  {d}");
    }
    if !query.is_safe() {
        println!("  UNSAFE query (a variable does not occur positively); skipping analysis");
        return Ok(());
    }
    println!("  executable: {}", is_executable(query, &program.schema));
    println!("  orderable:  {}", is_orderable(query, &program.schema));
    let report = feasible_detailed_with(query, &program.schema, engine);
    let how = match report.decided_by {
        DecisionPath::PlansCoincide => "plans coincide — no containment check needed",
        DecisionPath::OverestimateHasNull => "overestimate has null — ans(Q) unsafe",
        DecisionPath::ContainmentCheck => "containment check ans(Q) ⊑ Q",
    };
    println!("  feasible:   {} ({how})", report.feasible);
    if let Some(stats) = &report.containment {
        println!(
            "  containment: {} recursive call(s), {} memo hit(s), {} mapping(s), {} worker(s), engine cache {}",
            stats.recursive_calls,
            stats.cache_hits,
            stats.mappings_checked,
            stats.parallel_workers,
            if stats.engine_cache_hits > 0 { "hit" } else { "miss" },
        );
    }
    if report.feasible {
        println!("  plan:");
        for part in &report.plans.over.parts {
            println!("    {}", part.display_with(&program.schema));
        }
    }
    println!();
    Ok(())
}

fn explain_cmd(path: &str, engine: &ContainmentEngine) -> Result<(), String> {
    let program = load(path)?;
    if program.queries.is_empty() {
        return Err(format!("{path}: no queries defined"));
    }
    for query in &program.queries {
        println!("query {}:", query.signature.0);
        print!("{}", lap::core::explain_with(query, &program.schema, engine));
        println!();
    }
    println!("containment engine: {}", engine.stats());
    Ok(())
}

fn plan(path: &str) -> Result<(), String> {
    let program = load(path)?;
    for query in &program.queries {
        let pair = lap::core::plan_star(query, &program.schema);
        println!("query {}:", query.signature.0);
        println!("  underestimate Qu:");
        for p in &pair.under.parts {
            println!("    {}", p.display_with(&program.schema));
        }
        if pair.under.is_false() {
            println!("    {} :- false.", pair.under.head);
        }
        println!("  overestimate Qo:");
        for p in &pair.over.parts {
            println!("    {}", p.display_with(&program.schema));
        }
        if pair.over.is_false() {
            println!("    {} :- false.", pair.over.head);
        }
        println!();
    }
    Ok(())
}

fn run_query(program_path: &str, facts_path: &str, domain: Option<u64>) -> Result<(), String> {
    let program = load(program_path)?;
    let facts = std::fs::read_to_string(facts_path)
        .map_err(|e| format!("cannot read {facts_path}: {e}"))?;
    let db = Database::from_facts(&facts).map_err(|e| format!("{facts_path}: {e}"))?;
    for query in &program.queries {
        println!("query {}:", query.signature.0);
        let rep = answer_star(query, &program.schema, &db)
            .map_err(|e| format!("evaluating {}: {e}", query.signature.0))?;
        for t in &rep.under {
            println!("  {}", display_tuple(t));
        }
        match rep.completeness {
            Completeness::Complete => println!("  -- answer is complete"),
            Completeness::AtLeast(r) => {
                println!("  -- answer is not known to be complete (>= {:.0}%)", r * 100.0);
            }
            Completeness::Unknown => println!("  -- answer is not known to be complete"),
        }
        if !rep.delta.is_empty() {
            println!("  -- these tuples may be part of the answer:");
            for t in &rep.delta {
                println!("     {}", display_tuple(t));
            }
        }
        println!("  -- {}", rep.stats);
        if let Some(budget) = domain {
            let imp = answer_star_with_domain(query, &program.schema, &db, budget)
                .map_err(|e| format!("domain refinement: {e}"))?;
            let extra: Vec<String> = imp
                .improved_under
                .difference(&imp.base.under)
                .map(|t| display_tuple(t))
                .collect();
            println!(
                "  -- dom(x) refinement recovered {} extra certain answer(s){}{} ({} calls, fixpoint: {})",
                extra.len(),
                if extra.is_empty() { "" } else { ": " },
                extra.join(", "),
                imp.domain_calls,
                imp.domain_complete,
            );
        }
        println!();
    }
    Ok(())
}

fn profile(program_path: &str, facts_path: &str) -> Result<(), String> {
    use lap::engine::{eval_ordered_cq_traced, SourceRegistry};
    let program = load(program_path)?;
    let facts = std::fs::read_to_string(facts_path)
        .map_err(|e| format!("cannot read {facts_path}: {e}"))?;
    let db = Database::from_facts(&facts).map_err(|e| format!("{facts_path}: {e}"))?;
    for query in &program.queries {
        println!("query {}:", query.signature.0);
        let pair = lap::core::plan_star(query, &program.schema);
        let mut reg = SourceRegistry::new(&db, &program.schema);
        for part in &pair.over.parts {
            println!("disjunct: {part}");
            let (_, trace) = eval_ordered_cq_traced(&part.cq, &part.null_vars, &mut reg)
                .map_err(|e| format!("evaluating: {e}"))?;
            println!("{trace}");
            println!();
        }
        println!("total source usage: {}", reg.stats());
        println!();
    }
    Ok(())
}

fn optimize(program_path: &str, facts_path: Option<&str>) -> Result<(), String> {
    use lap::planner::{best_order, estimate_cost, minimal_executable_plan, CostModel};
    let program = load(program_path)?;
    let model = match facts_path {
        Some(path) => {
            let facts = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {path}: {e}"))?;
            let db = Database::from_facts(&facts).map_err(|e| format!("{path}: {e}"))?;
            CostModel::from_database(&db)
        }
        None => CostModel::new(),
    };
    for query in &program.queries {
        println!("query {}:", query.signature.0);
        let report = lap::core::feasible_detailed(query, &program.schema);
        if !report.feasible {
            println!("  not feasible — nothing to optimize (try `lapq explain`)");
            continue;
        }
        for part in &report.plans.over.parts {
            let base = estimate_cost(&part.cq, &program.schema, &model);
            println!("  plan:      {}", part.cq);
            if let Some(c) = base {
                println!("             est. {:.1} calls, {:.1} tuples", c.calls, c.tuples);
            }
            if let Some((better, cost)) = best_order(&part.cq, &program.schema, &model) {
                println!("  optimized: {}", better);
                println!("             est. {:.1} calls, {:.1} tuples", cost.calls, cost.tuples);
            }
        }
        if let Some(min_plan) = minimal_executable_plan(query, &program.schema) {
            println!("  minimal equivalent plan:");
            for d in &min_plan.disjuncts {
                println!("    {d}");
            }
        }
        println!();
    }
    Ok(())
}

fn mediate(views_path: &str, query_path: &str, facts_path: &str) -> Result<(), String> {
    let views_text = std::fs::read_to_string(views_path)
        .map_err(|e| format!("cannot read {views_path}: {e}"))?;
    let mediator =
        lap::mediator::Mediator::from_program(&views_text).map_err(|e| e.to_string())?;
    let query_program = load(query_path)?;
    let facts = std::fs::read_to_string(facts_path)
        .map_err(|e| format!("cannot read {facts_path}: {e}"))?;
    let db = Database::from_facts(&facts).map_err(|e| format!("{facts_path}: {e}"))?;
    for query in &query_program.queries {
        println!("global query {}:", query.signature.0);
        let (plan, report) = mediator.answer(query, &db).map_err(|e| e.to_string())?;
        println!("  unfolded into {} disjunct(s); feasible: {} ({:?})",
            plan.unfolded.disjuncts.len(),
            plan.feasibility.feasible,
            plan.feasibility.decided_by);
        for t in &report.under {
            println!("  {}", display_tuple(t));
        }
        if report.is_complete() {
            println!("  -- answer is complete");
        } else {
            println!("  -- answer is not known to be complete");
            for t in &report.delta {
                println!("     possible: {}", display_tuple(t));
            }
        }
        println!("  -- {}", report.stats);
        println!();
    }
    Ok(())
}

fn containment(
    path: &str,
    p_name: &str,
    q_name: &str,
    engine: &ContainmentEngine,
) -> Result<(), String> {
    let program = load(path)?;
    let p = program
        .query(p_name)
        .ok_or_else(|| format!("no query named {p_name} in {path}"))?;
    let q = program
        .query(q_name)
        .ok_or_else(|| format!("no query named {q_name} in {path}"))?;
    if p.signature.0.arity != q.signature.0.arity {
        return Err(format!(
            "{p_name} and {q_name} have different arities; containment is undefined"
        ));
    }
    // Containment compares head tuples; align the head predicates.
    let p_aligned = rename_head(p, q);
    println!("{} ⊑ {}: {}", p_name, q_name, engine.contained(&p_aligned, q));
    println!("{} ⊑ {}: {}", q_name, p_name, engine.contained(q, &p_aligned));
    Ok(())
}

/// Renames `p`'s head predicate to `q`'s so the containment machinery (which
/// compares same-signature queries) applies.
fn rename_head(p: &UnionQuery, q: &UnionQuery) -> UnionQuery {
    let mut out = p.clone();
    out.head.predicate = q.head.predicate;
    out.signature = q.signature;
    for d in &mut out.disjuncts {
        d.head.predicate = q.head.predicate;
    }
    out
}
