//! The daemon-wide telemetry plane: streaming journal folds behind a
//! publish-swap, drift baselines, and recalibration rate limiting.
//!
//! Every session owns a private journal; the [`TelemetryHub`] is where
//! their observations become *shared* state. A session folds its journal
//! incrementally (a [`FoldCursor`] guarantees each event contributes
//! exactly once) into the hub's published [`FeedbackStore`]; the watcher
//! thread and the operator ops read that store to decide when a cached
//! plan no longer matches reality.
//!
//! ## Lock discipline
//!
//! The published store follows the same replace-on-publish idea as the
//! plan cache: readers take an `RwLock` read guard just long enough to
//! clone an `Arc`, so profile fetches, drift sweeps, and stats never
//! block behind a fold. Writers (folds) serialize on a separate fold
//! mutex, build the next store aside (clone + incremental fold), and swap
//! the `Arc` under a brief write guard. A fold is O(new events + resident
//! profiles) with no I/O, so the fold mutex is never held long.
//!
//! ## Drift baselines
//!
//! The static cost model has no latency model and one uniform extent, so
//! the hub measures drift against *first observations* instead: the first
//! fold that shows traffic for a `(relation, pattern)` freezes its
//! rows-per-call and mean latency as that profile's [`Expectation`].
//! After the watcher recalibrates the affected entries, the baselines for
//! those relations are refreshed to the current observations — the new
//! reality is now the expectation, and the same drift cannot re-trigger.

use lap_obs::{
    Counter, DriftFlag, Expectation, FeedbackStore, FoldCursor, JournalSnapshot, Recorder,
};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// EWMA relation health below which the watcher considers a source
/// unhealthy enough to re-cost the plans that depend on it.
pub(crate) const HEALTH_FLOOR: f64 = 0.5;

/// The shared telemetry state: the published feedback store, the drift
/// baselines, per-entry recalibration cooldowns, and the counters the
/// `stats` op reports.
pub(crate) struct TelemetryHub {
    /// The published store. Readers clone the `Arc` under a read guard;
    /// folds swap it under a write guard.
    published: RwLock<Arc<FeedbackStore>>,
    /// Serializes the clone-fold-swap sequence across sessions.
    fold_lock: Mutex<()>,
    /// First-observation expectations per `(relation, pattern)`.
    baselines: Mutex<BTreeMap<(String, String), Expectation>>,
    /// Last recalibration attempt per cache key, for the cooldown.
    cooldowns: Mutex<HashMap<String, Instant>>,
    /// Completed folds (each with at least one new event).
    folds: Counter,
    /// Journal events folded in, across all sessions.
    events_folded: Counter,
    /// Watcher/forced sweeps that ran.
    sweeps: Counter,
    /// Plan-cache entries recalibrated and published.
    recalibrations: Counter,
    /// Recalibration candidates skipped because their cooldown was still
    /// running.
    cooldown_skips: Counter,
    /// Milliseconds since daemon start at the last fold (0 = never).
    last_fold_ms: AtomicU64,
}

impl TelemetryHub {
    /// An empty hub with its counters mirrored into `recorder` under
    /// `daemon.telemetry.*`.
    pub(crate) fn new(recorder: &Recorder) -> TelemetryHub {
        TelemetryHub {
            published: RwLock::new(Arc::new(FeedbackStore::new())),
            fold_lock: Mutex::new(()),
            baselines: Mutex::new(BTreeMap::new()),
            cooldowns: Mutex::new(HashMap::new()),
            folds: recorder.counter("daemon.telemetry.folds"),
            events_folded: recorder.counter("daemon.telemetry.events_folded"),
            sweeps: recorder.counter("daemon.telemetry.sweeps"),
            recalibrations: recorder.counter("daemon.telemetry.recalibrations"),
            cooldown_skips: recorder.counter("daemon.telemetry.cooldown_skips"),
            last_fold_ms: AtomicU64::new(0),
        }
    }

    /// The current published store, cheaply shared.
    pub(crate) fn store(&self) -> Arc<FeedbackStore> {
        Arc::clone(&self.published.read().expect("telemetry store lock"))
    }

    /// Folds the unseen suffix of `snapshot` into the published store and
    /// captures baselines for newly-seen profiles. Returns the number of
    /// events folded (0 leaves everything untouched, including the fold
    /// counters). `elapsed_ms` stamps the fold time for `stats`.
    pub(crate) fn fold(
        &self,
        snapshot: &JournalSnapshot,
        cursor: &mut FoldCursor,
        elapsed_ms: u64,
    ) -> u64 {
        let _guard = self.fold_lock.lock().expect("telemetry fold lock");
        let mut next = (*self.store()).clone();
        let folded = next.fold_since(snapshot, cursor);
        if folded == 0 {
            return 0;
        }
        self.capture_new_baselines(&next);
        *self.published.write().expect("telemetry store lock") = Arc::new(next);
        self.folds.incr();
        self.events_folded.add(folded);
        self.last_fold_ms.store(elapsed_ms, Ordering::SeqCst);
        folded
    }

    /// Drift flags of `store` against the captured baselines.
    pub(crate) fn drift_flags(&self, store: &FeedbackStore) -> Vec<DriftFlag> {
        let baselines = self.baselines.lock().expect("telemetry baselines");
        store.drift_flags_by(|relation, pattern| {
            baselines
                .get(&(relation.to_owned(), pattern.to_owned()))
                .copied()
        })
    }

    /// Re-anchors the baselines of `relations` to their current observed
    /// values in `store` — called after those relations' plans were
    /// recalibrated, so the handled drift stops flagging.
    pub(crate) fn refresh_baselines(&self, store: &FeedbackStore, relations: &BTreeSet<String>) {
        let mut baselines = self.baselines.lock().expect("telemetry baselines");
        for (key, p) in &store.profiles {
            if p.ok > 0 && relations.contains(&p.relation) {
                baselines.insert(key.clone(), expectation_of(p));
            }
        }
    }

    /// Cooldown gate for recalibrating the entry under `key`: returns
    /// `true` (and stamps the attempt) when no attempt ran within
    /// `cooldown`, or when `force` overrides the limit. A `false` is
    /// counted as a cooldown skip.
    pub(crate) fn cooldown_check(&self, key: &str, cooldown: Duration, force: bool) -> bool {
        let mut map = self.cooldowns.lock().expect("telemetry cooldowns");
        let now = Instant::now();
        if !force {
            if let Some(last) = map.get(key) {
                if now.duration_since(*last) < cooldown {
                    self.cooldown_skips.incr();
                    return false;
                }
            }
        }
        map.insert(key.to_owned(), now);
        true
    }

    pub(crate) fn note_sweep(&self) {
        self.sweeps.incr();
    }

    pub(crate) fn note_recalibration(&self) {
        self.recalibrations.incr();
    }

    pub(crate) fn folds(&self) -> u64 {
        self.folds.get()
    }

    pub(crate) fn events_folded(&self) -> u64 {
        self.events_folded.get()
    }

    pub(crate) fn sweeps(&self) -> u64 {
        self.sweeps.get()
    }

    pub(crate) fn recalibrations(&self) -> u64 {
        self.recalibrations.get()
    }

    pub(crate) fn cooldown_skips(&self) -> u64 {
        self.cooldown_skips.get()
    }

    /// Milliseconds since daemon start at the last fold (0 = never).
    pub(crate) fn last_fold_ms(&self) -> u64 {
        self.last_fold_ms.load(Ordering::SeqCst)
    }

    fn capture_new_baselines(&self, store: &FeedbackStore) {
        let mut baselines = self.baselines.lock().expect("telemetry baselines");
        for (key, p) in &store.profiles {
            if p.ok > 0 && !baselines.contains_key(key) {
                baselines.insert(key.clone(), expectation_of(p));
            }
        }
    }
}

/// A profile's current observations, frozen as the drift expectation.
fn expectation_of(p: &lap_obs::SourceProfile) -> Expectation {
    Expectation {
        rows_per_call: p.rows_per_call(),
        latency_ms: p.latency.mean(),
    }
}
