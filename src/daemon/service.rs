//! The shared query service behind every `lapd` session.
//!
//! One [`Service`] lives for the whole daemon: it owns the shared plan
//! cache, the memoized containment engine, the admission [`Gate`], and the
//! server-wide recorder. Session threads borrow it through an `Arc` and
//! call [`Service::handle`] per request — everything mutable inside is
//! already thread-safe (the cache and gate lock internally, the engine
//! memoizes behind its own mutexes, counters are atomic).

use super::telemetry::{TelemetryHub, HEALTH_FLOOR};
use super::DaemonConfig;
use lap_core::{canonical_text, render_answer_report, render_outcome, PlanCache, PreparedProgram};
use lap_engine::sched::Gate;
use lap_engine::{
    Database, ExecConfig, FaultConfig, ResilienceConfig, RetryPolicy, MAX_BATCH_WIDTH,
    MAX_IO_WORKERS,
};
use lap_containment::{ContainmentEngine, EngineConfig};
use lap_obs::journal::kind;
use lap_obs::{Counter, FoldCursor, Histogram, HistogramSnapshot, Json, JournalConfig, Recorder};
use lap_planner::{recalibrate_published, CostModel, Strategy};
use lap_proto::{ErrorCode, QueryOptions, Request, Response};
use std::collections::BTreeSet;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// The daemon-wide state shared by every session thread.
pub(crate) struct Service {
    config: DaemonConfig,
    /// Server-wide recorder: plan-cache counters, request/session totals.
    /// Per-session recorders (with journals) live in the session threads;
    /// this one aggregates what must survive sessions.
    recorder: Recorder,
    engine: ContainmentEngine,
    cache: PlanCache<PreparedProgram>,
    gate: Gate,
    active_sessions: AtomicUsize,
    sessions_total: Counter,
    requests_total: Counter,
    errors_total: Counter,
    quota_rejections: Counter,
    shutdown: AtomicBool,
    addr: Mutex<Option<SocketAddr>>,
    started: Instant,
    /// The telemetry plane: published feedback store, drift baselines,
    /// recalibration rate limiting.
    telemetry: TelemetryHub,
    /// Static cost model the watcher calibrates against.
    static_model: CostModel,
    /// Admission-gate wait per query request, in microseconds.
    gate_wait_us: Histogram,
    /// End-to-end query handling latency, in microseconds.
    request_us: Histogram,
    /// Watcher parking: flips true on shutdown; the condvar wakes the
    /// watcher thread out of its interval sleep immediately.
    watch_stop: Mutex<bool>,
    watch_cv: Condvar,
}

impl Service {
    pub(crate) fn new(config: DaemonConfig) -> Service {
        // The server-wide recorder carries a journal so watcher actions
        // (`daemon.recalibrate`) are auditable like any other event.
        let recorder = Recorder::with_journal(JournalConfig::light());
        // Memoized containment engine: feasibility verdicts are shared
        // across every session and every cached program.
        let engine = ContainmentEngine::with_recorder(
            EngineConfig { parallel: false, cache: true },
            &recorder,
        );
        let cache = PlanCache::new(config.cache_bytes).with_recorder(&recorder);
        let gate = Gate::new(config.exec_permits());
        Service {
            sessions_total: recorder.counter("daemon.sessions"),
            requests_total: recorder.counter("daemon.requests"),
            errors_total: recorder.counter("daemon.errors"),
            quota_rejections: recorder.counter("daemon.quota_rejections"),
            telemetry: TelemetryHub::new(&recorder),
            static_model: CostModel::new(),
            gate_wait_us: recorder.histogram("daemon.gate_wait_us"),
            request_us: recorder.histogram("daemon.request_us"),
            config,
            recorder,
            engine,
            cache,
            gate,
            active_sessions: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            addr: Mutex::new(None),
            started: Instant::now(),
            watch_stop: Mutex::new(false),
            watch_cv: Condvar::new(),
        }
    }

    pub(crate) fn config(&self) -> &DaemonConfig {
        &self.config
    }

    pub(crate) fn set_addr(&self, addr: SocketAddr) {
        *self.addr.lock().expect("addr mutex") = Some(addr);
    }

    pub(crate) fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Flips the shutdown flag and pokes the accept loop awake with a
    /// throwaway connection so it observes the flag without waiting for a
    /// real client.
    pub(crate) fn request_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Park the telemetry watcher before poking the accept loop.
        *self.watch_stop.lock().expect("watch mutex") = true;
        self.watch_cv.notify_all();
        let addr = *self.addr.lock().expect("addr mutex");
        if let Some(addr) = addr {
            let _ = std::net::TcpStream::connect_timeout(&addr, Duration::from_millis(250));
        }
    }

    /// Session accounting: returns `false` when the daemon is at its
    /// session cap and the connection must be refused with a quota frame.
    pub(crate) fn try_open_session(&self) -> bool {
        loop {
            let active = self.active_sessions.load(Ordering::SeqCst);
            if active >= self.config.max_sessions {
                self.quota_rejections.incr();
                return false;
            }
            if self
                .active_sessions
                .compare_exchange(active, active + 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                self.sessions_total.incr();
                return true;
            }
        }
    }

    pub(crate) fn close_session(&self) {
        self.active_sessions.fetch_sub(1, Ordering::SeqCst);
    }

    pub(crate) fn active_sessions(&self) -> usize {
        self.active_sessions.load(Ordering::SeqCst)
    }

    /// Handles one parsed request, returning the response to frame back.
    /// `session` is the per-session recorder (journal included) that
    /// query execution reports into.
    pub(crate) fn handle(&self, req: Request, session: &Recorder) -> Response {
        self.requests_total.incr();
        let id = req.id();
        let result = match req {
            Request::Ping { .. } => Ok(("pong".to_owned(), Json::Null)),
            Request::Stats { .. } => Ok((self.stats_text(), self.stats_json())),
            Request::Shutdown { .. } => Ok(("shutting down".to_owned(), Json::Null)),
            Request::Profile { .. } => {
                let store = self.telemetry.store();
                Ok((store.summary(), store.to_json()))
            }
            Request::Health { .. } => Ok(self.health_payload()),
            Request::Recalibrate { .. } => Ok(self.recalibrate_payload()),
            Request::Query { program, facts, options, .. } => {
                let begun = Instant::now();
                let result = self.run_query(&program, &facts, &options, session);
                self.request_us.record(begun.elapsed().as_micros() as u64);
                result
            }
        };
        match result {
            Ok((text, data)) => Response::Ok { id, text, data },
            Err((code, message)) => {
                self.errors_total.incr();
                if code == ErrorCode::Quota {
                    self.quota_rejections.incr();
                }
                Response::Error { id, code, message }
            }
        }
    }

    /// The query path: admission gate → plan cache → execute each
    /// prepared query, rendering exactly what one-shot `lapq run` prints.
    fn run_query(
        &self,
        program: &str,
        facts: &str,
        options: &QueryOptions,
        session: &Recorder,
    ) -> Result<(String, Json), (ErrorCode, String)> {
        if self.shutting_down() {
            return Err((ErrorCode::ShuttingDown, "daemon is shutting down".to_owned()));
        }
        let exec = exec_config_from_options(options)?;
        let resilience = resilience_from_options(options)?;

        // Admission: wait a bounded slice of the request's deadline budget
        // for an execution permit; a full gate past the budget is an
        // honest quota rejection, never a hang.
        let wait_ms = self.config.admission_wait_ms.min(
            options.deadline_ms.unwrap_or(self.config.admission_wait_ms),
        );
        let gate_begun = Instant::now();
        let permit = self.gate.try_enter(Duration::from_millis(wait_ms));
        self.gate_wait_us.record(gate_begun.elapsed().as_micros() as u64);
        let Some(_permit) = permit else {
            return Err((
                ErrorCode::Quota,
                format!(
                    "admission queue full: no execution permit freed within {wait_ms} ms \
                     ({} in flight)",
                    self.gate.permits()
                ),
            ));
        };

        // Plan cache: compile outside the cache lock on a miss; every
        // session with the same canonical program text shares one entry.
        let key = canonical_text(program);
        let (prepared, cache_hit) = self
            .cache
            .get_or_compile(&key, PreparedProgram::estimated_bytes, || {
                PreparedProgram::compile_with(program, &self.engine)
            })
            .map_err(|e| (ErrorCode::QueryError, format!("program: {e}")))?;
        let db = Database::from_facts(facts)
            .map_err(|e| (ErrorCode::QueryError, format!("facts: {e}")))?;

        let mut text = String::new();
        for prep in prepared.queries() {
            let sig = prep.query().signature.0;
            text.push_str(&format!("query {sig}:\n"));
            match &resilience {
                Some(res) => {
                    let outcome = prep
                        .execute_resilient_obs_cfg(&db, session, res, exec)
                        .map_err(|e| {
                            (ErrorCode::QueryError, format!("evaluating {sig}: {e}"))
                        })?;
                    text.push_str(&render_outcome(&outcome));
                }
                None => {
                    let rep = prep.execute_obs_cfg(&db, session, exec).map_err(|e| {
                        (ErrorCode::QueryError, format!("evaluating {sig}: {e}"))
                    })?;
                    text.push_str(&render_answer_report(&rep));
                    text.push('\n');
                }
            }
        }
        let data = Json::obj([
            ("cache_hit", Json::Bool(cache_hit)),
            ("queries", Json::num(prepared.queries().len() as u64)),
        ]);
        Ok((text, data))
    }

    fn stats_text(&self) -> String {
        let cache = self.cache.stats();
        let mut out = format!(
            "sessions: {} active, {} total\n\
             requests: {} ({} errors, {} quota rejections)\n\
             plan cache: {} hits, {} misses, {} evictions, {} publishes, \
             {} entries, {} bytes ({:.1}% hit rate)\n",
            self.active_sessions(),
            self.sessions_total.get(),
            self.requests_total.get(),
            self.errors_total.get(),
            self.quota_rejections.get(),
            cache.hits,
            cache.misses,
            cache.evictions,
            cache.publishes,
            cache.entries,
            cache.bytes,
            cache.hit_rate() * 100.0,
        );
        for entry in self.cache.entries_detail() {
            out.push_str(&format!(
                "  entry: {} bytes, {} hits — {}\n",
                entry.bytes,
                entry.hits,
                ellipsize(&entry.key, 60),
            ));
        }
        out.push_str(&format!(
            "telemetry: {} folds ({} events), {} sweeps, {} recalibrations, \
             {} cooldown skips, last fold at {} ms\n",
            self.telemetry.folds(),
            self.telemetry.events_folded(),
            self.telemetry.sweeps(),
            self.telemetry.recalibrations(),
            self.telemetry.cooldown_skips(),
            self.telemetry.last_fold_ms(),
        ));
        let gate = self.gate_wait_us.snapshot();
        let request = self.request_us.snapshot();
        out.push_str(&format!(
            "latency: gate wait p50 {:.0}us p95 {:.0}us p99 {:.0}us, \
             request p50 {:.0}us p95 {:.0}us p99 {:.0}us ({} queries)\n",
            gate.p50(),
            gate.p95(),
            gate.p99(),
            request.p50(),
            request.p95(),
            request.p99(),
            request.count,
        ));
        out.push_str(&format!(
            "containment engine: {}\nuptime: {} ms\n",
            self.engine.stats(),
            self.started.elapsed().as_millis(),
        ));
        out
    }

    pub(crate) fn stats_json(&self) -> Json {
        let cache = self.cache.stats();
        Json::obj([
            (
                "sessions",
                Json::obj([
                    ("active", Json::num(self.active_sessions() as u64)),
                    ("total", Json::num(self.sessions_total.get())),
                    ("max", Json::num(self.config.max_sessions as u64)),
                ]),
            ),
            (
                "requests",
                Json::obj([
                    ("total", Json::num(self.requests_total.get())),
                    ("errors", Json::num(self.errors_total.get())),
                    ("quota_rejections", Json::num(self.quota_rejections.get())),
                ]),
            ),
            (
                "plan_cache",
                Json::obj([
                    ("hits", Json::num(cache.hits)),
                    ("misses", Json::num(cache.misses)),
                    ("evictions", Json::num(cache.evictions)),
                    ("publishes", Json::num(cache.publishes)),
                    ("entries", Json::num(cache.entries as u64)),
                    ("bytes", Json::num(cache.bytes as u64)),
                    ("hit_rate", Json::Num(cache.hit_rate())),
                    (
                        "per_entry",
                        Json::Arr(
                            self.cache
                                .entries_detail()
                                .into_iter()
                                .map(|e| {
                                    Json::obj([
                                        ("key", Json::str(&e.key)),
                                        ("bytes", Json::num(e.bytes as u64)),
                                        ("hits", Json::num(e.hits)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ),
            (
                "admission",
                Json::obj([
                    ("permits", Json::num(self.gate.permits() as u64)),
                    ("in_use", Json::num(self.gate.in_use() as u64)),
                ]),
            ),
            (
                "telemetry",
                Json::obj([
                    ("folds", Json::num(self.telemetry.folds())),
                    ("events_folded", Json::num(self.telemetry.events_folded())),
                    ("last_fold_ms", Json::num(self.telemetry.last_fold_ms())),
                    ("profiles", Json::num(self.telemetry.store().profiles.len() as u64)),
                    ("sweeps", Json::num(self.telemetry.sweeps())),
                    ("recalibrations", Json::num(self.telemetry.recalibrations())),
                    ("cooldown_skips", Json::num(self.telemetry.cooldown_skips())),
                ]),
            ),
            (
                "latency",
                Json::obj([
                    ("gate_wait_us", histogram_json(&self.gate_wait_us.snapshot())),
                    ("request_us", histogram_json(&self.request_us.snapshot())),
                ]),
            ),
            ("uptime_ms", Json::num(self.started.elapsed().as_millis() as u64)),
        ])
    }

    /// The server-wide recorder (plan-cache and daemon counters).
    pub(crate) fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Folds the unseen suffix of a session's journal into the telemetry
    /// hub. Sessions call this synchronously every
    /// `fold_every_requests` queries (before the response is written, so
    /// a client that has read its answer can immediately observe the
    /// folded profile) and once more when the session ends.
    pub(crate) fn fold_session(&self, session: &Recorder, cursor: &mut FoldCursor) -> u64 {
        let Some(journal) = session.journal() else { return 0 };
        self.telemetry.fold(
            &journal.snapshot(),
            cursor,
            self.started.elapsed().as_millis() as u64,
        )
    }

    /// The telemetry watcher's thread body: sweep every
    /// `watch_interval_ms`, park immediately on shutdown.
    pub(crate) fn watch_loop(&self) {
        let interval = Duration::from_millis(self.config.watch_interval_ms.max(1));
        let mut stop = self.watch_stop.lock().expect("watch mutex");
        while !*stop {
            let (guard, _) = self
                .watch_cv
                .wait_timeout(stop, interval)
                .expect("watch mutex");
            stop = guard;
            if *stop {
                break;
            }
            drop(stop);
            self.telemetry_sweep(false);
            stop = self.watch_stop.lock().expect("watch mutex");
        }
    }

    /// One telemetry sweep: evaluate drift flags and relation health
    /// against the published store, then recalibrate every cached plan
    /// that depends on an affected relation (all plans when `force`).
    /// Every published recalibration is journaled as a
    /// `daemon.recalibrate` event with before/after root costs.
    pub(crate) fn telemetry_sweep(&self, force: bool) -> SweepSummary {
        self.telemetry.note_sweep();
        let store = self.telemetry.store();
        let flags = self.telemetry.drift_flags(&store);
        let mut affected: BTreeSet<String> =
            flags.iter().map(|f| f.relation.clone()).collect();
        let relations: BTreeSet<String> =
            store.profiles.keys().map(|(rel, _)| rel.clone()).collect();
        for rel in &relations {
            if self.relation_unhealthy(&store, rel) {
                affected.insert(rel.clone());
            }
        }
        let mut summary = SweepSummary {
            drift_flags: flags.len() as u64,
            affected: affected.iter().cloned().collect(),
            checked: 0,
            recalibrated: 0,
        };
        if affected.is_empty() && !force {
            return summary;
        }
        let cooldown = Duration::from_millis(self.config.recalibrate_cooldown_ms);
        for entry in self.cache.entries_detail() {
            let Some(prog) = self.cache.peek(&entry.key) else { continue };
            let touched = prog.relations();
            if !force && touched.is_disjoint(&affected) {
                continue;
            }
            if !self.telemetry.cooldown_check(&entry.key, cooldown, force) {
                continue;
            }
            summary.checked += 1;
            let before = root_costs(&prog);
            let published = recalibrate_published(
                &self.cache,
                &entry.key,
                &self.static_model,
                &store,
                Strategy::Exhaustive,
            );
            if !published {
                continue;
            }
            summary.recalibrated += 1;
            self.telemetry.note_recalibration();
            let after = self
                .cache
                .peek(&entry.key)
                .map(|p| root_costs(&p))
                .unwrap_or(Json::Null);
            if let Some(journal) = self.recorder.journal() {
                journal.emit(
                    0,
                    self.started.elapsed().as_millis() as u64,
                    kind::DAEMON_RECALIBRATE,
                    Json::obj([
                        ("key", Json::str(&entry.key)),
                        ("forced", Json::Bool(force)),
                        (
                            "relations",
                            Json::Arr(touched.iter().map(Json::str).collect()),
                        ),
                        ("before", before),
                        ("after", after),
                    ]),
                );
            }
        }
        // The drift we just handled becomes the new expectation, so the
        // same divergence cannot re-trigger the watcher every interval.
        let refresh = if force { &relations } else { &affected };
        self.telemetry.refresh_baselines(&store, refresh);
        summary
    }

    fn relation_unhealthy(&self, store: &lap_obs::FeedbackStore, relation: &str) -> bool {
        store
            .relation_health(relation)
            .is_some_and(|h| h < HEALTH_FLOOR)
    }

    /// The `health` op: per-relation EWMA health and drift rollups.
    fn health_payload(&self) -> (String, Json) {
        let store = self.telemetry.store();
        let flags = self.telemetry.drift_flags(&store);
        let relations: BTreeSet<String> =
            store.profiles.keys().map(|(rel, _)| rel.clone()).collect();
        let mut text = String::new();
        let mut rows = Vec::new();
        for rel in &relations {
            let health = store.relation_health(rel).unwrap_or(0.0);
            let attempts: u64 = store.profiles_of(rel).map(|p| p.attempts).sum();
            let drifted = flags.iter().filter(|f| &f.relation == rel).count() as u64;
            let status = if drifted > 0 {
                "drifting"
            } else if health < HEALTH_FLOOR {
                "unhealthy"
            } else {
                "ok"
            };
            text.push_str(&format!(
                "{rel}: health {health:.2}, {attempts} attempt(s), {status}\n"
            ));
            rows.push(Json::obj([
                ("relation", Json::str(rel)),
                ("health", Json::Num(health)),
                ("attempts", Json::num(attempts)),
                ("drift_flags", Json::num(drifted)),
                ("status", Json::str(status)),
            ]));
        }
        for flag in &flags {
            text.push_str(&format!("drift: {flag}\n"));
        }
        if relations.is_empty() {
            text.push_str("no telemetry folded yet\n");
        }
        let drift = flags
            .iter()
            .map(|f| {
                Json::obj([
                    ("relation", Json::str(&f.relation)),
                    ("pattern", Json::str(&f.pattern)),
                    ("metric", Json::str(&f.metric)),
                    ("observed", Json::Num(f.observed)),
                    ("expected", Json::Num(f.expected)),
                ])
            })
            .collect();
        let data = Json::obj([
            ("relations", Json::Arr(rows)),
            ("drift", Json::Arr(drift)),
            ("folds", Json::num(self.telemetry.folds())),
            ("last_fold_ms", Json::num(self.telemetry.last_fold_ms())),
        ]);
        (text, data)
    }

    /// The `recalibrate` op: one forced sweep over every cached plan.
    fn recalibrate_payload(&self) -> (String, Json) {
        let summary = self.telemetry_sweep(true);
        let text = format!(
            "sweep: {} entr{} checked, {} recalibrated\n",
            summary.checked,
            if summary.checked == 1 { "y" } else { "ies" },
            summary.recalibrated,
        );
        (text, summary.to_json())
    }
}

/// What one telemetry sweep did — the `recalibrate` op's payload.
pub(crate) struct SweepSummary {
    /// Drift flags outstanding when the sweep started.
    pub(crate) drift_flags: u64,
    /// Relations that triggered the sweep (drifting or unhealthy).
    pub(crate) affected: Vec<String>,
    /// Cache entries whose recalibration was attempted.
    pub(crate) checked: u64,
    /// Entries whose recalibrated plans were published.
    pub(crate) recalibrated: u64,
}

impl SweepSummary {
    fn to_json(&self) -> Json {
        Json::obj([
            ("drift_flags", Json::num(self.drift_flags)),
            (
                "affected",
                Json::Arr(self.affected.iter().map(Json::str).collect()),
            ),
            ("checked", Json::num(self.checked)),
            ("recalibrated", Json::num(self.recalibrated)),
        ])
    }
}

/// Sums the dual root-cost annotations over a program's underestimate
/// plans. Entries compiled before any recalibration carry no annotations
/// and sum to zero — the first `daemon.recalibrate` event's `before` says
/// exactly that.
fn root_costs(prog: &PreparedProgram) -> Json {
    let (mut est_calls, mut est_tuples) = (0.0, 0.0);
    let (mut cal_calls, mut cal_tuples) = (0.0, 0.0);
    for q in prog.queries() {
        for part in &q.physical().under.parts {
            let Some(root) = part.ops.last() else { continue };
            if let Some(cost) = root.cost() {
                est_calls += cost.calls;
                est_tuples += cost.tuples;
            }
            if let Some(cost) = root.calibrated() {
                cal_calls += cost.calls;
                cal_tuples += cost.tuples;
            }
        }
    }
    Json::obj([
        ("est_calls", Json::Num(est_calls)),
        ("est_tuples", Json::Num(est_tuples)),
        ("cal_calls", Json::Num(cal_calls)),
        ("cal_tuples", Json::Num(cal_tuples)),
    ])
}

fn histogram_json(snap: &HistogramSnapshot) -> Json {
    Json::obj([
        ("count", Json::num(snap.count)),
        ("mean", Json::Num(snap.mean())),
        ("p50", Json::Num(snap.p50())),
        ("p95", Json::Num(snap.p95())),
        ("p99", Json::Num(snap.p99())),
        ("max", Json::num(snap.max)),
    ])
}

/// Truncates `text` to at most `limit` characters with an ellipsis, for
/// one-line console output of long cache keys.
fn ellipsize(text: &str, limit: usize) -> String {
    if text.chars().count() <= limit {
        return text.to_owned();
    }
    let head: String = text.chars().take(limit.saturating_sub(1)).collect();
    format!("{head}…")
}

/// Mirrors `lapq`'s `--io-workers` / `--batch-width` validation: zero and
/// out-of-range values are rejected with a `bad-request` frame.
fn exec_config_from_options(
    options: &QueryOptions,
) -> Result<ExecConfig, (ErrorCode, String)> {
    let mut cfg = ExecConfig::default();
    if let Some(n) = options.io_workers {
        if n == 0 || n > MAX_IO_WORKERS as u64 {
            return Err((
                ErrorCode::BadRequest,
                format!("io_workers must be in [1, {MAX_IO_WORKERS}], got {n}"),
            ));
        }
        cfg = cfg.with_io_workers(n as usize);
    }
    if let Some(n) = options.batch_width {
        if n == 0 || n > MAX_BATCH_WIDTH as u64 {
            return Err((
                ErrorCode::BadRequest,
                format!("batch_width must be in [1, {MAX_BATCH_WIDTH}], got {n}"),
            ));
        }
        cfg.batch_size = n as usize;
    }
    Ok(cfg)
}

/// Mirrors `lapq`'s resilience-flag handling bit for bit (same defaults,
/// same seed, same retry policy) so a daemon answer equals the CLI's.
fn resilience_from_options(
    options: &QueryOptions,
) -> Result<Option<ResilienceConfig>, (ErrorCode, String)> {
    if !options.wants_resilience() {
        return Ok(None);
    }
    let rate = options.fault_rate.unwrap_or(0.0);
    if !(0.0..=1.0).contains(&rate) {
        return Err((
            ErrorCode::BadRequest,
            format!("fault_rate must be in [0, 1], got {rate}"),
        ));
    }
    let fault = FaultConfig {
        error_rate: rate,
        latency_ms: options.latency_ms.unwrap_or(0),
        latency_jitter_ms: 0,
        timeout_ms: options.timeout_ms,
        seed: options.fault_seed.unwrap_or(0xC0FFEE),
    };
    let mut retry = RetryPolicy::standard();
    if let Some(n) = options.retry {
        if n == 0 || n > u32::MAX as u64 {
            return Err((
                ErrorCode::BadRequest,
                format!("retry must be in [1, {}], got {n}", u32::MAX),
            ));
        }
        retry = retry.with_max_attempts(n as u32);
    }
    if let Some(budget) = options.deadline_ms {
        retry = retry.with_deadline_ms(budget);
    }
    Ok(Some(ResilienceConfig { fault: Some(fault), retry }))
}
