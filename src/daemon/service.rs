//! The shared query service behind every `lapd` session.
//!
//! One [`Service`] lives for the whole daemon: it owns the shared plan
//! cache, the memoized containment engine, the admission [`Gate`], and the
//! server-wide recorder. Session threads borrow it through an `Arc` and
//! call [`Service::handle`] per request — everything mutable inside is
//! already thread-safe (the cache and gate lock internally, the engine
//! memoizes behind its own mutexes, counters are atomic).

use super::DaemonConfig;
use lap_core::{canonical_text, render_answer_report, render_outcome, PlanCache, PreparedProgram};
use lap_engine::sched::Gate;
use lap_engine::{
    Database, ExecConfig, FaultConfig, ResilienceConfig, RetryPolicy, MAX_BATCH_WIDTH,
    MAX_IO_WORKERS,
};
use lap_containment::{ContainmentEngine, EngineConfig};
use lap_obs::{Counter, Json, Recorder};
use lap_proto::{ErrorCode, QueryOptions, Request, Response};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The daemon-wide state shared by every session thread.
pub(crate) struct Service {
    config: DaemonConfig,
    /// Server-wide recorder: plan-cache counters, request/session totals.
    /// Per-session recorders (with journals) live in the session threads;
    /// this one aggregates what must survive sessions.
    recorder: Recorder,
    engine: ContainmentEngine,
    cache: PlanCache<PreparedProgram>,
    gate: Gate,
    active_sessions: AtomicUsize,
    sessions_total: Counter,
    requests_total: Counter,
    errors_total: Counter,
    quota_rejections: Counter,
    shutdown: AtomicBool,
    addr: Mutex<Option<SocketAddr>>,
    started: Instant,
}

impl Service {
    pub(crate) fn new(config: DaemonConfig) -> Service {
        let recorder = Recorder::new();
        // Memoized containment engine: feasibility verdicts are shared
        // across every session and every cached program.
        let engine = ContainmentEngine::with_recorder(
            EngineConfig { parallel: false, cache: true },
            &recorder,
        );
        let cache = PlanCache::new(config.cache_bytes).with_recorder(&recorder);
        let gate = Gate::new(config.exec_permits());
        Service {
            sessions_total: recorder.counter("daemon.sessions"),
            requests_total: recorder.counter("daemon.requests"),
            errors_total: recorder.counter("daemon.errors"),
            quota_rejections: recorder.counter("daemon.quota_rejections"),
            config,
            recorder,
            engine,
            cache,
            gate,
            active_sessions: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            addr: Mutex::new(None),
            started: Instant::now(),
        }
    }

    pub(crate) fn config(&self) -> &DaemonConfig {
        &self.config
    }

    pub(crate) fn set_addr(&self, addr: SocketAddr) {
        *self.addr.lock().expect("addr mutex") = Some(addr);
    }

    pub(crate) fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Flips the shutdown flag and pokes the accept loop awake with a
    /// throwaway connection so it observes the flag without waiting for a
    /// real client.
    pub(crate) fn request_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        let addr = *self.addr.lock().expect("addr mutex");
        if let Some(addr) = addr {
            let _ = std::net::TcpStream::connect_timeout(&addr, Duration::from_millis(250));
        }
    }

    /// Session accounting: returns `false` when the daemon is at its
    /// session cap and the connection must be refused with a quota frame.
    pub(crate) fn try_open_session(&self) -> bool {
        loop {
            let active = self.active_sessions.load(Ordering::SeqCst);
            if active >= self.config.max_sessions {
                self.quota_rejections.incr();
                return false;
            }
            if self
                .active_sessions
                .compare_exchange(active, active + 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                self.sessions_total.incr();
                return true;
            }
        }
    }

    pub(crate) fn close_session(&self) {
        self.active_sessions.fetch_sub(1, Ordering::SeqCst);
    }

    pub(crate) fn active_sessions(&self) -> usize {
        self.active_sessions.load(Ordering::SeqCst)
    }

    /// Handles one parsed request, returning the response to frame back.
    /// `session` is the per-session recorder (journal included) that
    /// query execution reports into.
    pub(crate) fn handle(&self, req: Request, session: &Recorder) -> Response {
        self.requests_total.incr();
        let id = req.id();
        let result = match req {
            Request::Ping { .. } => Ok(("pong".to_owned(), Json::Null)),
            Request::Stats { .. } => Ok((self.stats_text(), self.stats_json())),
            Request::Shutdown { .. } => Ok(("shutting down".to_owned(), Json::Null)),
            Request::Query { program, facts, options, .. } => {
                self.run_query(&program, &facts, &options, session)
            }
        };
        match result {
            Ok((text, data)) => Response::Ok { id, text, data },
            Err((code, message)) => {
                self.errors_total.incr();
                if code == ErrorCode::Quota {
                    self.quota_rejections.incr();
                }
                Response::Error { id, code, message }
            }
        }
    }

    /// The query path: admission gate → plan cache → execute each
    /// prepared query, rendering exactly what one-shot `lapq run` prints.
    fn run_query(
        &self,
        program: &str,
        facts: &str,
        options: &QueryOptions,
        session: &Recorder,
    ) -> Result<(String, Json), (ErrorCode, String)> {
        if self.shutting_down() {
            return Err((ErrorCode::ShuttingDown, "daemon is shutting down".to_owned()));
        }
        let exec = exec_config_from_options(options)?;
        let resilience = resilience_from_options(options)?;

        // Admission: wait a bounded slice of the request's deadline budget
        // for an execution permit; a full gate past the budget is an
        // honest quota rejection, never a hang.
        let wait_ms = self.config.admission_wait_ms.min(
            options.deadline_ms.unwrap_or(self.config.admission_wait_ms),
        );
        let Some(_permit) = self.gate.try_enter(Duration::from_millis(wait_ms)) else {
            return Err((
                ErrorCode::Quota,
                format!(
                    "admission queue full: no execution permit freed within {wait_ms} ms \
                     ({} in flight)",
                    self.gate.permits()
                ),
            ));
        };

        // Plan cache: compile outside the cache lock on a miss; every
        // session with the same canonical program text shares one entry.
        let key = canonical_text(program);
        let (prepared, cache_hit) = self
            .cache
            .get_or_compile(&key, PreparedProgram::estimated_bytes, || {
                PreparedProgram::compile_with(program, &self.engine)
            })
            .map_err(|e| (ErrorCode::QueryError, format!("program: {e}")))?;
        let db = Database::from_facts(facts)
            .map_err(|e| (ErrorCode::QueryError, format!("facts: {e}")))?;

        let mut text = String::new();
        for prep in prepared.queries() {
            let sig = prep.query().signature.0;
            text.push_str(&format!("query {sig}:\n"));
            match &resilience {
                Some(res) => {
                    let outcome = prep
                        .execute_resilient_obs_cfg(&db, session, res, exec)
                        .map_err(|e| {
                            (ErrorCode::QueryError, format!("evaluating {sig}: {e}"))
                        })?;
                    text.push_str(&render_outcome(&outcome));
                }
                None => {
                    let rep = prep.execute_obs_cfg(&db, session, exec).map_err(|e| {
                        (ErrorCode::QueryError, format!("evaluating {sig}: {e}"))
                    })?;
                    text.push_str(&render_answer_report(&rep));
                    text.push('\n');
                }
            }
        }
        let data = Json::obj([
            ("cache_hit", Json::Bool(cache_hit)),
            ("queries", Json::num(prepared.queries().len() as u64)),
        ]);
        Ok((text, data))
    }

    fn stats_text(&self) -> String {
        let cache = self.cache.stats();
        format!(
            "sessions: {} active, {} total\n\
             requests: {} ({} errors, {} quota rejections)\n\
             plan cache: {} hits, {} misses, {} evictions, {} publishes, \
             {} entries, {} bytes ({:.1}% hit rate)\n\
             containment engine: {}\n\
             uptime: {} ms\n",
            self.active_sessions(),
            self.sessions_total.get(),
            self.requests_total.get(),
            self.errors_total.get(),
            self.quota_rejections.get(),
            cache.hits,
            cache.misses,
            cache.evictions,
            cache.publishes,
            cache.entries,
            cache.bytes,
            cache.hit_rate() * 100.0,
            self.engine.stats(),
            self.started.elapsed().as_millis(),
        )
    }

    pub(crate) fn stats_json(&self) -> Json {
        let cache = self.cache.stats();
        Json::obj([
            (
                "sessions",
                Json::obj([
                    ("active", Json::num(self.active_sessions() as u64)),
                    ("total", Json::num(self.sessions_total.get())),
                    ("max", Json::num(self.config.max_sessions as u64)),
                ]),
            ),
            (
                "requests",
                Json::obj([
                    ("total", Json::num(self.requests_total.get())),
                    ("errors", Json::num(self.errors_total.get())),
                    ("quota_rejections", Json::num(self.quota_rejections.get())),
                ]),
            ),
            (
                "plan_cache",
                Json::obj([
                    ("hits", Json::num(cache.hits)),
                    ("misses", Json::num(cache.misses)),
                    ("evictions", Json::num(cache.evictions)),
                    ("publishes", Json::num(cache.publishes)),
                    ("entries", Json::num(cache.entries as u64)),
                    ("bytes", Json::num(cache.bytes as u64)),
                    ("hit_rate", Json::Num(cache.hit_rate())),
                ]),
            ),
            (
                "admission",
                Json::obj([
                    ("permits", Json::num(self.gate.permits() as u64)),
                    ("in_use", Json::num(self.gate.in_use() as u64)),
                ]),
            ),
            ("uptime_ms", Json::num(self.started.elapsed().as_millis() as u64)),
        ])
    }

    /// The server-wide recorder (plan-cache and daemon counters).
    pub(crate) fn recorder(&self) -> &Recorder {
        &self.recorder
    }
}

/// Mirrors `lapq`'s `--io-workers` / `--batch-width` validation: zero and
/// out-of-range values are rejected with a `bad-request` frame.
fn exec_config_from_options(
    options: &QueryOptions,
) -> Result<ExecConfig, (ErrorCode, String)> {
    let mut cfg = ExecConfig::default();
    if let Some(n) = options.io_workers {
        if n == 0 || n > MAX_IO_WORKERS as u64 {
            return Err((
                ErrorCode::BadRequest,
                format!("io_workers must be in [1, {MAX_IO_WORKERS}], got {n}"),
            ));
        }
        cfg = cfg.with_io_workers(n as usize);
    }
    if let Some(n) = options.batch_width {
        if n == 0 || n > MAX_BATCH_WIDTH as u64 {
            return Err((
                ErrorCode::BadRequest,
                format!("batch_width must be in [1, {MAX_BATCH_WIDTH}], got {n}"),
            ));
        }
        cfg.batch_size = n as usize;
    }
    Ok(cfg)
}

/// Mirrors `lapq`'s resilience-flag handling bit for bit (same defaults,
/// same seed, same retry policy) so a daemon answer equals the CLI's.
fn resilience_from_options(
    options: &QueryOptions,
) -> Result<Option<ResilienceConfig>, (ErrorCode, String)> {
    if !options.wants_resilience() {
        return Ok(None);
    }
    let rate = options.fault_rate.unwrap_or(0.0);
    if !(0.0..=1.0).contains(&rate) {
        return Err((
            ErrorCode::BadRequest,
            format!("fault_rate must be in [0, 1], got {rate}"),
        ));
    }
    let fault = FaultConfig {
        error_rate: rate,
        latency_ms: options.latency_ms.unwrap_or(0),
        latency_jitter_ms: 0,
        timeout_ms: options.timeout_ms,
        seed: options.fault_seed.unwrap_or(0xC0FFEE),
    };
    let mut retry = RetryPolicy::standard();
    if let Some(n) = options.retry {
        if n == 0 || n > u32::MAX as u64 {
            return Err((
                ErrorCode::BadRequest,
                format!("retry must be in [1, {}], got {n}", u32::MAX),
            ));
        }
        retry = retry.with_max_attempts(n as u32);
    }
    if let Some(budget) = options.deadline_ms {
        retry = retry.with_deadline_ms(budget);
    }
    Ok(Some(ResilienceConfig { fault: Some(fault), retry }))
}
