//! One session per connection: a thread that reads frames, dispatches
//! them through the shared [`Service`](super::service::Service), and
//! writes response frames back.
//!
//! Error containment is the design rule: nothing a single client does —
//! oversized frames, garbage bytes, invalid requests, infeasible
//! programs, quota exhaustion — may take down the daemon or another
//! session. Frame-level damage (`bad-frame`) ends only the offending
//! connection (the stream may be out of sync past the bad frame);
//! request-level errors are answered and the session continues.

use super::service::Service;
use lap_obs::{FoldCursor, JournalConfig, Recorder};
use lap_proto::{read_frame, write_frame, ErrorCode, FrameError, Request, Response, MAX_FRAME_BYTES};
use std::io::BufReader;
use std::net::TcpStream;
use std::sync::Arc;

/// Decrements the active-session count on drop, so a panicking session
/// thread can never leak its slot.
struct SessionSlot<'a>(&'a Service);

impl Drop for SessionSlot<'_> {
    fn drop(&mut self) {
        self.0.close_session();
    }
}

/// Runs one accepted connection to completion. The session owns a
/// recorder with a flight-recorder journal: queries executed on this
/// connection record into it exactly like a one-shot `lapq run --journal`
/// would, without contending with other sessions.
pub(crate) fn run_session(stream: TcpStream, service: Arc<Service>) {
    let _slot = SessionSlot(&service);
    stream.set_nodelay(true).ok();
    let idle = service.config().idle_timeout_ms;
    if idle > 0 {
        stream
            .set_read_timeout(Some(std::time::Duration::from_millis(idle)))
            .ok();
    }
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let session_recorder = Recorder::with_journal(JournalConfig::light());
    // Telemetry: this session's contribution to the shared feedback
    // store. The cursor makes each fold incremental — every journal event
    // is folded exactly once, at the periodic fold or the final one.
    let mut fold_cursor = FoldCursor::new();
    let fold_every = service.config().fold_every_requests;
    let mut queries_since_fold: u64 = 0;
    loop {
        let doc = match read_frame(&mut reader, MAX_FRAME_BYTES) {
            Ok(doc) => doc,
            // Clean close or transport failure: nothing to answer.
            Err(FrameError::Closed) | Err(FrameError::Io(_)) => break,
            // Unusable frame: answer, then end this session only — the
            // byte stream past a bad frame cannot be trusted.
            Err(FrameError::Malformed(message)) => {
                let resp = Response::Error { id: 0, code: ErrorCode::BadFrame, message };
                let _ = write_frame(&mut writer, &resp.to_json());
                break;
            }
        };
        let req = match Request::from_json(&doc) {
            Ok(req) => req,
            // Valid JSON, invalid request: answer and keep the session.
            Err(message) => {
                let resp = Response::Error { id: 0, code: ErrorCode::BadRequest, message };
                if write_frame(&mut writer, &resp.to_json()).is_err() {
                    break;
                }
                continue;
            }
        };
        let is_shutdown = matches!(req, Request::Shutdown { .. });
        let is_query = matches!(req, Request::Query { .. });
        if is_shutdown {
            // Flip the flag before the ack goes out: a client that has
            // seen the ack must observe `is_shutting_down()` as true.
            service.request_shutdown();
        }
        let resp = service.handle(req, &session_recorder);
        if is_query && fold_every > 0 {
            // Fold *before* the response goes out: a client that has read
            // its answer can immediately fetch a profile that includes it.
            queries_since_fold += 1;
            if queries_since_fold >= fold_every {
                service.fold_session(&session_recorder, &mut fold_cursor);
                queries_since_fold = 0;
            }
        }
        if write_frame(&mut writer, &resp.to_json()).is_err() {
            break;
        }
        if is_shutdown {
            break;
        }
    }
    // Final fold: whatever the periodic cadence left unfolded still
    // reaches the hub when the connection closes.
    service.fold_session(&session_recorder, &mut fold_cursor);
}
