//! `lapd` — a long-running query service over the `lap` pipeline.
//!
//! One-shot `lapq run` pays parse + PLAN\*/FEASIBLE + lowering on every
//! invocation. The daemon amortizes all three across requests and
//! clients: sessions (one thread per TCP connection, length-prefixed JSON
//! frames — see [`lap_proto`]) share a [`PlanCache`] of compiled
//! [`PreparedProgram`]s keyed on canonical query text, a memoized
//! containment engine, and a bounded admission [`Gate`]
//! (`lap_engine::sched`) that converts overload into `quota` error frames
//! instead of unbounded queueing.
//!
//! [`PlanCache`]: lap_core::PlanCache
//! [`PreparedProgram`]: lap_core::PreparedProgram
//! [`Gate`]: lap_engine::sched::Gate
//!
//! The answer contract is **byte identity**: a `query` response's `text`
//! equals what one-shot `lapq run` prints for the same program, facts,
//! and options — whether the plans came from the cache or were compiled
//! on the miss path. The integration suite (`tests/daemon.rs`) and the CI
//! smoke test `cmp` the two.
//!
//! ```no_run
//! use lap::daemon::{DaemonConfig, Server};
//! use lap_proto::{Client, QueryOptions, Response};
//!
//! let server = Server::start(DaemonConfig::default(), "127.0.0.1:0").unwrap();
//! let mut client = Client::connect(server.addr()).unwrap();
//! let resp = client
//!     .query("C^oo.\nQ(i) :- C(i, a).", "C(1, \"a\").", QueryOptions::default())
//!     .unwrap();
//! if let Response::Ok { text, .. } = resp {
//!     print!("{text}");
//! }
//! server.shutdown();
//! ```

mod service;
mod session;
mod telemetry;

use lap_obs::Json;
use lap_proto::{write_frame, ErrorCode, Response};
use service::Service;
use std::io;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for a daemon instance. `Default` is sized for a local
/// development daemon; every field can be overridden from the `lapd` CLI.
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// Maximum concurrent sessions (connections). A connection beyond the
    /// cap is answered with one `quota` error frame and closed.
    pub max_sessions: usize,
    /// Concurrent query executions (admission-gate permits). `0` sizes
    /// the gate to the machine's available parallelism.
    pub exec_permits: usize,
    /// Longest a request waits for an execution permit before it is
    /// rejected with a `quota` frame. A request carrying a smaller
    /// `deadline_ms` waits at most that instead.
    pub admission_wait_ms: u64,
    /// Plan-cache byte budget (estimated bytes; LRU eviction past it).
    pub cache_bytes: usize,
    /// Close a session after this much idle time on the read side
    /// (`0` = never).
    pub idle_timeout_ms: u64,
    /// Fold a session's journal into the shared telemetry store every
    /// this many query requests (`0` = only at session end). The fold is
    /// incremental (a cursor tracks what was already folded), so the
    /// default of every request stays cheap.
    pub fold_every_requests: u64,
    /// Telemetry watcher interval: how often drift flags and relation
    /// health are evaluated against the cached plans (`0` = no watcher;
    /// the `recalibrate` op still forces sweeps on demand).
    pub watch_interval_ms: u64,
    /// Minimum time between recalibration attempts of the same cache
    /// entry (`0` = no cooldown). Forced sweeps ignore it.
    pub recalibrate_cooldown_ms: u64,
}

impl Default for DaemonConfig {
    fn default() -> DaemonConfig {
        DaemonConfig {
            max_sessions: 256,
            exec_permits: 0,
            admission_wait_ms: 1_000,
            cache_bytes: lap_core::DEFAULT_CACHE_BYTES,
            idle_timeout_ms: 0,
            fold_every_requests: 1,
            watch_interval_ms: 500,
            recalibrate_cooldown_ms: 2_000,
        }
    }
}

impl DaemonConfig {
    /// The resolved admission-gate size: the configured permit count, or
    /// the machine's available parallelism when left at `0`.
    pub fn exec_permits(&self) -> usize {
        if self.exec_permits > 0 {
            self.exec_permits
        } else {
            std::thread::available_parallelism().map_or(4, |n| n.get())
        }
    }
}

/// A running daemon: the bound listener plus its accept thread. Dropping
/// the handle does **not** stop the daemon; call [`Server::shutdown`] (or
/// send a `shutdown` frame) for a clean stop.
pub struct Server {
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    watcher: Option<JoinHandle<()>>,
    service: Arc<Service>,
}

impl Server {
    /// Binds `bind` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts accepting sessions on a background thread. When the config
    /// enables the telemetry watcher, its thread starts here too.
    pub fn start(config: DaemonConfig, bind: &str) -> io::Result<Server> {
        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;
        let watch = config.watch_interval_ms > 0;
        let service = Arc::new(Service::new(config));
        service.set_addr(addr);
        let svc = Arc::clone(&service);
        let accept = std::thread::Builder::new()
            .name("lapd-accept".to_owned())
            .spawn(move || accept_loop(listener, svc))?;
        let watcher = if watch {
            let svc = Arc::clone(&service);
            Some(
                std::thread::Builder::new()
                    .name("lapd-telemetry".to_owned())
                    .spawn(move || svc.watch_loop())?,
            )
        } else {
            None
        };
        Ok(Server { addr, accept: Some(accept), watcher, service })
    }

    /// The address the daemon is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Daemon statistics as JSON — same payload a `stats` frame returns.
    pub fn stats_json(&self) -> Json {
        self.service.stats_json()
    }

    /// Snapshot of the server-wide metrics (plan-cache and daemon
    /// counters).
    pub fn metrics(&self) -> lap_obs::Snapshot {
        self.service.recorder().snapshot()
    }

    /// Snapshot of the server-wide journal — watcher actions
    /// (`daemon.recalibrate` events) land here.
    pub fn journal(&self) -> Option<lap_obs::JournalSnapshot> {
        self.service.recorder().journal().map(|j| j.snapshot())
    }

    /// Forces one telemetry sweep, exactly as a `recalibrate` frame
    /// would. Returns how many cached entries were recalibrated.
    pub fn force_recalibrate(&self) -> u64 {
        self.service.telemetry_sweep(true).recalibrated
    }

    /// True once a shutdown has been requested (by this handle or by a
    /// client's `shutdown` frame).
    pub fn is_shutting_down(&self) -> bool {
        self.service.shutting_down()
    }

    /// Stops accepting connections, waits for the accept thread, then
    /// gives in-flight sessions a bounded grace period to drain. Safe to
    /// call after a client-initiated shutdown; idempotent.
    pub fn shutdown(mut self) {
        self.service.request_shutdown();
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.watcher.take() {
            let _ = handle.join();
        }
        // Best-effort drain: sessions answering a request finish it; idle
        // sessions are abandoned after the grace period (their threads
        // exit with the process).
        let deadline = Instant::now() + Duration::from_secs(2);
        while self.service.active_sessions() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Blocks until a client-initiated shutdown stops the accept loop —
    /// the `lapd` binary's main loop.
    pub fn run_until_shutdown(mut self) {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.watcher.take() {
            let _ = handle.join();
        }
        let deadline = Instant::now() + Duration::from_secs(2);
        while self.service.active_sessions() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}

fn accept_loop(listener: TcpListener, service: Arc<Service>) {
    for stream in listener.incoming() {
        if service.shutting_down() {
            break;
        }
        let Ok(stream) = stream else { continue };
        // Session cap: refuse with a single quota frame instead of letting
        // connections pile up unanswered.
        if !service.try_open_session() {
            refuse_over_capacity(stream, &service);
            continue;
        }
        let svc = Arc::clone(&service);
        let spawned = std::thread::Builder::new()
            .name("lapd-session".to_owned())
            .spawn(move || session::run_session(stream, svc));
        if spawned.is_err() {
            // Thread exhaustion: give the slot back; the client sees EOF.
            service.close_session();
        }
    }
}

fn refuse_over_capacity(mut stream: TcpStream, service: &Service) {
    let resp = Response::Error {
        id: 0,
        code: ErrorCode::Quota,
        message: format!(
            "session limit reached ({} active)",
            service.config().max_sessions
        ),
    };
    let _ = write_frame(&mut stream, &resp.to_json());
    // Half-close and drain until the peer hangs up: a full close while the
    // client is still sending would RST the connection and can discard the
    // refusal frame before the client reads it. Bounded so a stuck peer
    // cannot pin the accept loop.
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let mut sink = [0u8; 256];
    while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
}
