//! # lap — queries under limited access patterns
//!
//! A production-quality Rust reproduction of *Alan Nash and Bertram
//! Ludäscher, "Processing Unions of Conjunctive Queries with Negation under
//! Limited Access Patterns" (EDBT 2004)*.
//!
//! Sources that can only be called like web services — "give me an author,
//! I return their books" — are modeled as relations with **access
//! patterns** (`B^oio`). A query over such sources is **feasible** if it is
//! equivalent to an **executable** plan that respects the patterns. This
//! workspace implements the paper's full pipeline:
//!
//! * [`ir`] — queries (CQ, UCQ, CQ¬, UCQ¬), access patterns, a Datalog
//!   parser;
//! * [`containment`] — Chandra–Merlin, Sagiv–Yannakakis, and Wei–Lausen
//!   containment, minimization, acyclic fast paths;
//! * [`core`] — the paper's algorithms: ANSWERABLE (Fig. 1), PLAN\*
//!   (Fig. 2), FEASIBLE (Fig. 3), ANSWER\* (Fig. 4), and the Theorem-18 /
//!   Proposition-20 hardness reductions;
//! * [`engine`] — an in-memory relational engine whose *only* read path
//!   enforces access patterns, plus an unrestricted oracle and
//!   domain-enumeration views;
//! * [`baselines`] — Li & Chang's CQstable/CQstable\*/UCQstable/UCQstable\*;
//! * [`workload`] — seeded generators for the experiment suite.
//!
//! ## Quickstart
//!
//! ```
//! use lap::core::{answer_star, feasible_detailed, DecisionPath};
//! use lap::engine::Database;
//! use lap::ir::parse_program;
//!
//! // The paper's Example 1: books in a store and a catalog but not in the
//! // local library. Not executable as written — but feasible.
//! let program = parse_program(
//!     "B^ioo. B^oio. C^oo. L^o.\n\
//!      Q(i, a, t) :- B(i, a, t), C(i, a), not L(i).",
//! )
//! .unwrap();
//! let query = program.single_query().unwrap();
//!
//! let report = feasible_detailed(query, &program.schema);
//! assert!(report.feasible);
//! assert_eq!(report.decided_by, DecisionPath::PlansCoincide);
//!
//! // Runtime: evaluate through pattern-enforcing sources.
//! let db = Database::from_facts(
//!     r#"B(1, "tolkien", "lotr"). C(1, "tolkien"). L(2)."#,
//! )
//! .unwrap();
//! let answer = answer_star(query, &program.schema, &db).unwrap();
//! assert!(answer.is_complete());
//! assert_eq!(answer.under.len(), 1);
//! ```

#![forbid(unsafe_code)]

pub mod daemon;

pub use lap_baselines as baselines;
pub use lap_constraints as constraints;
pub use lap_containment as containment;
pub use lap_core as core;
pub use lap_engine as engine;
pub use lap_ir as ir;
pub use lap_mediator as mediator;
pub use lap_obs as obs;
pub use lap_planner as planner;
pub use lap_proto as proto;
pub use lap_workload as workload;
