//! Cross-layer consistency of the `lap-obs` observability layer: the
//! metric counters a shared [`Recorder`] accumulates must agree with the
//! legacy per-component statistics ([`CallStats`], [`EngineStats`], the
//! `EXPLAIN ANALYZE` traces) that are now views over the same registry.

use lap::containment::{ContainmentEngine, EngineConfig};
use lap::core::{answer_star, answer_star_obs, feasible_detailed_obs};
use lap::engine::{eval_ordered_union_traced, Database, SourceRegistry};
use lap::ir::parse_program;
use lap::obs::{render_text, snapshot_to_json, Json, Recorder};

fn bookstore() -> (lap::ir::Program, Database) {
    let program = parse_program(
        "B^ioo. B^oio. C^oo. L^o.\n\
         Q(i, a, t) :- B(i, a, t), C(i, a), not L(i).",
    )
    .unwrap();
    let db = Database::from_facts(
        r#"
        C(1, "adams"). C(2, "clarke"). C(3, "lem").
        B(1, "adams", "hhgttg"). B(2, "clarke", "odyssey"). B(3, "lem", "solaris").
        L(2).
        "#,
    )
    .unwrap();
    (program, db)
}

/// The per-literal trace counts every request the plan makes; the registry
/// splits the same requests into wire calls and cache hits. Their totals
/// must coincide — on both cached and uncached registries.
#[test]
fn union_trace_totals_match_registry_call_stats() {
    let (program, db) = bookstore();
    let query = program.single_query().unwrap();
    let pair = lap::core::plan_star(query, &program.schema);
    for cached in [false, true] {
        let recorder = Recorder::new();
        let base = if cached {
            SourceRegistry::with_cache(&db, &program.schema)
        } else {
            SourceRegistry::new(&db, &program.schema)
        };
        let mut reg = base.recording(&recorder);
        let (_, trace) = eval_ordered_union_traced(&pair.over.eval_parts(), &mut reg).unwrap();
        let totals = trace.totals();
        let stats = reg.stats();
        // The trace counts every request; the registry splits the same
        // requests into positive wire calls, membership probes (disjoint
        // since the resilience work), and cache hits.
        assert_eq!(
            totals.calls,
            stats.calls + reg.membership_probes() + stats.cache_hits,
            "cached={cached}: trace counts requests, stats split them three ways"
        );
        // The recorder sees exactly what the legacy stats view reports.
        let snap = recorder.snapshot();
        assert_eq!(snap.counter("source.calls"), stats.calls);
        assert_eq!(snap.counter("source.cache_hits"), stats.cache_hits);
        assert_eq!(snap.counter("source.tuples_returned"), stats.tuples_returned);
        // Per-disjunct sub-traces merge into the union totals.
        let per_disjunct: u64 = trace.disjuncts.iter().map(|(_, t)| t.totals().calls).sum();
        assert_eq!(totals.calls, per_disjunct);
    }
}

/// Lifetime [`EngineStats`] must equal the sum of the per-decision
/// [`ContainmentStats`] mirrored into the recorder over a workload.
#[test]
fn engine_stats_match_summed_decision_stats() {
    let program = parse_program(
        "R^oo. S^io.\n\
         P(x) :- R(x, y), S(x, z).\n\
         Q(x) :- R(x, y).",
    )
    .unwrap();
    let p = program.query("P").unwrap();
    let q = program.query("Q").unwrap();
    let recorder = Recorder::new();
    let engine = ContainmentEngine::with_recorder(
        EngineConfig { parallel: false, cache: true },
        &recorder,
    );
    let mut summed_recursive = 0;
    let mut summed_mappings = 0;
    let mut decisions = 0;
    for _ in 0..3 {
        for (a, b) in [(p, q), (q, p)] {
            // Head predicates differ; compare via renamed copies the way
            // `lapq contain` does.
            let mut a2 = a.clone();
            a2.head.predicate = b.head.predicate;
            a2.signature = b.signature;
            for d in &mut a2.disjuncts {
                d.head.predicate = b.head.predicate;
            }
            let (_, per_decision) = engine.contained_stats(&a2, b);
            summed_recursive += per_decision.recursive_calls;
            summed_mappings += per_decision.mappings_checked;
            decisions += 1;
        }
    }
    let stats = engine.stats();
    assert_eq!(stats.decisions, decisions);
    assert_eq!(stats.cache_hits + stats.cache_misses, decisions);
    let snap = recorder.snapshot();
    assert_eq!(snap.counter("containment.decisions"), stats.decisions);
    assert_eq!(snap.counter("containment.cache_hits"), stats.cache_hits);
    assert_eq!(snap.counter("containment.cache_misses"), stats.cache_misses);
    assert_eq!(snap.counter("containment.recursive_calls"), summed_recursive);
    assert_eq!(snap.counter("containment.mappings_checked"), summed_mappings);
    assert_eq!(
        snap.counter("containment.verdicts.contained")
            + snap.counter("containment.verdicts.not_contained"),
        stats.decisions
    );
}

/// `answer_star_obs` must (a) return exactly what `answer_star` returns,
/// (b) mirror the legacy `CallStats` into `source.*` counters, and (c)
/// cover the pipeline phases with spans.
#[test]
fn answer_star_obs_matches_legacy_and_spans_the_pipeline() {
    let (program, db) = bookstore();
    let query = program.single_query().unwrap();
    let plain = answer_star(query, &program.schema, &db).unwrap();
    let recorder = Recorder::with_tracing();
    let observed = answer_star_obs(query, &program.schema, &db, &recorder).unwrap();
    assert_eq!(plain.under, observed.under);
    assert_eq!(plain.delta, observed.delta);
    assert_eq!(plain.stats, observed.stats);
    let snap = recorder.snapshot();
    assert_eq!(snap.counter("source.calls"), observed.stats.calls);
    assert_eq!(
        snap.counter("source.tuples_returned"),
        observed.stats.tuples_returned
    );
    assert_eq!(snap.counter("source.cache_hits"), observed.stats.cache_hits);
    for phase in ["answer*", "plan*", "answerable", "answer*.under", "answer*.over"] {
        assert!(snap.find_span(phase).is_some(), "missing span {phase:?}");
    }
    // The rows-per-call histogram saw every wire call.
    assert_eq!(
        snap.metrics.histograms["source.rows_per_call"].count,
        observed.stats.calls
    );
}

/// Negative-literal membership probes are counted apart from positive
/// source calls: the `source.membership` counter, the registry's
/// `membership_probes()` view, and the full ANSWER\* pipeline must agree.
#[test]
fn membership_probes_are_split_from_positive_calls() {
    use lap::engine::{execute_physical_union, ExecConfig};
    let (program, db) = bookstore();
    let query = program.single_query().unwrap();
    let pair = lap::core::plan_star(query, &program.schema);
    let recorder = Recorder::new();
    let mut reg = SourceRegistry::new(&db, &program.schema).recording(&recorder);
    let physical = pair.over.lower(&program.schema);
    execute_physical_union(&physical, &mut reg, ExecConfig::default()).unwrap();
    let probes = reg.membership_probes();
    assert!(probes > 0, "the bookstore plan ends in `not L(i)`");
    let snap = recorder.snapshot();
    assert_eq!(snap.counter("source.membership"), probes);
    // Membership probes are DISJOINT from positive calls: `source.calls`
    // counts only positive fetches, and the rows-per-call histogram (a
    // positive-call profile) never sees a probe. Their sum is the wire
    // total the per-literal trace observes.
    assert_eq!(snap.counter("source.calls"), reg.stats().calls);
    assert_eq!(
        snap.metrics.histograms["source.rows_per_call"].count,
        reg.stats().calls,
        "membership probes must not enter the positive-call histogram"
    );

    // The end-to-end pipeline reports the same counter.
    let rec2 = Recorder::new();
    let _ = answer_star_obs(query, &program.schema, &db, &rec2).unwrap();
    assert!(rec2.snapshot().counter("source.membership") > 0);
}

/// The FEASIBLE decision traced through a recorder-backed engine opens the
/// `feasible` span (plus `containment` when the check actually runs).
#[test]
fn feasible_obs_spans_cover_the_decision() {
    let program = parse_program(
        "R^oo. S^io.\n\
         Q(x) :- R(x, y), not S(x, y).",
    )
    .unwrap();
    let query = program.single_query().unwrap();
    let recorder = Recorder::with_tracing();
    let engine = ContainmentEngine::with_recorder(EngineConfig::default(), &recorder);
    let report = feasible_detailed_obs(query, &program.schema, &engine, &recorder);
    let snap = recorder.snapshot();
    assert!(snap.find_span("feasible").is_some());
    assert!(snap.find_span("plan*").is_some());
    assert!(snap.find_span("answerable").is_some());
    if report.containment.is_some() {
        assert!(snap.find_span("containment").is_some());
        assert!(snap.counter("containment.decisions") >= 1);
    }
}

/// The JSON exporter round-trips through the crate's own parser with the
/// required document shape (`counters` / `histograms` / `spans`).
#[test]
fn snapshot_json_round_trips_with_required_keys() {
    let (program, db) = bookstore();
    let query = program.single_query().unwrap();
    let recorder = Recorder::with_tracing();
    let report = answer_star_obs(query, &program.schema, &db, &recorder).unwrap();
    let snap = recorder.snapshot();
    let doc = snapshot_to_json(&snap);
    let parsed = lap::obs::json::parse(&doc.to_pretty()).unwrap();
    let counters = parsed.get("counters").expect("counters key");
    assert_eq!(
        counters.get("source.calls").and_then(Json::as_u64),
        Some(report.stats.calls)
    );
    let hist = parsed
        .get("histograms")
        .and_then(|h| h.get("source.rows_per_call"))
        .expect("rows_per_call histogram");
    assert_eq!(hist.get("count").and_then(Json::as_u64), Some(report.stats.calls));
    let spans = parsed.get("spans").and_then(Json::as_arr).expect("spans array");
    assert!(!spans.is_empty());
    fn span_names(spans: &[Json], out: &mut Vec<String>) {
        for s in spans {
            if let Some(name) = s.get("name").and_then(Json::as_str) {
                out.push(name.to_owned());
            }
            if let Some(children) = s.get("children").and_then(Json::as_arr) {
                span_names(children, out);
            }
        }
    }
    let mut names = Vec::new();
    span_names(spans, &mut names);
    for phase in ["answer*", "plan*", "answerable"] {
        assert!(names.iter().any(|n| n == phase), "missing {phase:?} in {names:?}");
    }
    // The text renderer shows the same snapshot.
    let text = render_text(&snap);
    assert!(text.contains("answer*"), "{text}");
    assert!(text.contains("source.calls"), "{text}");
}
