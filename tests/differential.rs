//! Differential testing of the parallel + memoized containment engine.
//!
//! The engine (`lap::containment::ContainmentEngine`) may only ever be an
//! *optimization*: for every configuration — sequential or parallel,
//! cached or uncached — its verdicts must be bit-identical to the plain
//! free functions. This harness generates hundreds of seeded UCQ¬ pairs
//! and fails with the exact seed (and the query texts) on any
//! disagreement, so a report like `pair case 137` replays bit-for-bit
//! with `StdRng::seed_from_u64`.

use lap::containment::{
    canonical_key, contained, ucqn_contained_parallel, ucqn_contained_stats, ContainmentEngine,
    EngineConfig,
};
use lap::core::{feasible_detailed, feasible_detailed_with, DecisionPath};
use lap::engine::{eval_ordered_union, eval_ordered_union_parallel, SourceRegistry};
use lap::ir::{Schema, UnionQuery};
use lap::workload::{
    gen_instance, gen_query, gen_schema, InstanceConfig, QueryConfig, SchemaConfig,
};
use lap_prng::StdRng;

/// Generated-pair volume. The default already satisfies the "hundreds of
/// pairs" bar; `--features slow-tests` widens the sweep.
const PAIRS: u64 = if cfg!(feature = "slow-tests") { 600 } else { 240 };

/// Sub-seeds for one case, derived from a fixed per-suite salt so every
/// suite walks a different but reproducible region of the space.
fn case_rng(salt: u64, case: u64) -> StdRng {
    StdRng::seed_from_u64(salt.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ case)
}

/// One generated UCQ¬ pair over a shared schema. Varies the shape with the
/// case index so small/large, positive/negated, single/multi-disjunct
/// pairs all appear.
fn gen_pair(case: u64) -> (UnionQuery, UnionQuery) {
    let mut rng = case_rng(0xD1FF, case);
    let schema = gen_schema(
        &SchemaConfig {
            num_relations: 4,
            max_arity: 2,
            ..SchemaConfig::default()
        },
        &mut rng,
    );
    let cfg = QueryConfig {
        num_disjuncts: 1 + (case % 3) as usize,
        positive_per_disjunct: 1 + (case % 2) as usize,
        negative_per_disjunct: (case % 2) as usize,
        extra_vars: 2,
        head_arity: 1,
        constant_fraction: 0.15,
        constant_pool: 3,
    };
    let p = gen_query(&schema, &cfg, &mut rng);
    let q = gen_query(&schema, &cfg, &mut rng);
    (p, q)
}

#[test]
fn parallel_containment_agrees_with_sequential_on_generated_pairs() {
    let mut disagreements = Vec::new();
    for case in 0..PAIRS {
        let (p, q) = gen_pair(case);
        let (seq, _) = ucqn_contained_stats(&p, &q);
        let (par, _) = ucqn_contained_parallel(&p, &q);
        if seq != par {
            disagreements.push(format!(
                "pair case {case}: sequential={seq} parallel={par}\n  P = {p}\n  Q = {q}"
            ));
        }
        // Containment is directional; check the flip side too.
        let (seq_r, _) = ucqn_contained_stats(&q, &p);
        let (par_r, _) = ucqn_contained_parallel(&q, &p);
        if seq_r != par_r {
            disagreements.push(format!(
                "pair case {case} (reversed): sequential={seq_r} parallel={par_r}\n  P = {q}\n  Q = {p}"
            ));
        }
    }
    assert!(
        disagreements.is_empty(),
        "{} disagreement(s) out of {PAIRS} pairs:\n{}",
        disagreements.len(),
        disagreements.join("\n")
    );
}

#[test]
fn cached_engine_agrees_with_uncached_on_generated_pairs() {
    // One engine per configuration, shared across every pair, so the cache
    // accumulates state exactly as it would in a long-lived mediator.
    let cached = ContainmentEngine::new(EngineConfig {
        parallel: false,
        cache: true,
    });
    let full = ContainmentEngine::new(EngineConfig::full());
    for case in 0..PAIRS {
        let (p, q) = gen_pair(case);
        let expected = contained(&p, &q);
        for (name, engine) in [("cached", &cached), ("parallel+cached", &full)] {
            let got = engine.contained(&p, &q);
            assert_eq!(
                got, expected,
                "{name} engine disagrees on pair case {case}:\n  P = {p}\n  Q = {q}"
            );
        }
        // Ask the cached engine again: the repeat must hit the cache and
        // return the same verdict.
        let (again, stats) = cached.contained_stats(&p, &q);
        assert_eq!(
            again, expected,
            "cached repeat flipped on pair case {case}:\n  P = {p}\n  Q = {q}"
        );
        assert_eq!(
            stats.engine_cache_hits, 1,
            "repeat of pair case {case} missed the cache ({stats:?}):\n  P = {p}\n  Q = {q}"
        );
    }
    let s = cached.stats();
    assert!(
        s.cache_hits >= PAIRS,
        "expected at least one hit per pair, got {s}"
    );
    assert_eq!(s.decisions, s.cache_hits + s.cache_misses, "{s}");
}

#[test]
fn canonical_keys_are_alpha_invariant_on_generated_queries() {
    for case in 0..PAIRS {
        let (p, _) = gen_pair(case);
        // Renaming every variable must not change the key...
        let renamed: UnionQuery = {
            let mut s = lap::ir::Substitution::new();
            for d in &p.disjuncts {
                for v in d.vars() {
                    s.insert(
                        v,
                        lap::ir::Term::Var(lap::ir::Var::new(&format!("zz_{}", v.name()))),
                    );
                }
            }
            UnionQuery::new(p.disjuncts.iter().map(|d| d.apply(&s)).collect())
                .expect("heads renamed uniformly")
        };
        assert_eq!(
            canonical_key(&p),
            canonical_key(&renamed),
            "pair case {case}: α-renaming changed the key of {p}"
        );
        // ...and equal keys must never pair inequivalent queries: the key
        // of P must differ from the key of a strictly weaker variant.
        if p.disjuncts.len() == 1 && p.disjuncts[0].body.len() >= 2 {
            let mut weaker = p.disjuncts[0].clone();
            weaker.body.pop();
            let weaker = UnionQuery::single(weaker);
            if !contained(&weaker, &p) {
                assert_ne!(
                    canonical_key(&p),
                    canonical_key(&weaker),
                    "pair case {case}: inequivalent queries share a key"
                );
            }
        }
    }
}

#[test]
fn feasibility_agrees_across_engine_configurations() {
    let engine = ContainmentEngine::new(EngineConfig::full());
    let mut containment_checks = 0u64;
    for case in 0..PAIRS {
        let mut rng = case_rng(0xFEA5, case);
        let schema = gen_schema(&SchemaConfig::default(), &mut rng);
        let q = gen_query(
            &schema,
            &QueryConfig {
                num_disjuncts: 1 + (case % 3) as usize,
                ..QueryConfig::default()
            },
            &mut rng,
        );
        let plain = feasible_detailed(&q, &schema);
        let engined = feasible_detailed_with(&q, &schema, &engine);
        assert_eq!(
            plain.feasible, engined.feasible,
            "feasibility flipped on case {case}: {q}"
        );
        assert_eq!(
            plain.decided_by, engined.decided_by,
            "decision path changed on case {case}: {q}"
        );
        if plain.decided_by == DecisionPath::ContainmentCheck {
            containment_checks += 1;
        }
    }
    // The sweep must actually exercise the containment branch, not just
    // the fast paths — otherwise this test proves nothing about the engine.
    assert!(
        containment_checks > 0,
        "no generated query reached the containment branch"
    );
}

/// The runtime analogue: the parallel union evaluator must return the same
/// answer set and the same merged source-call totals as the sequential one
/// (satellite of the same differential discipline, over the engine crate).
#[test]
fn parallel_evaluation_agrees_with_sequential_on_generated_workloads() {
    let volume = if cfg!(feature = "slow-tests") { 120 } else { 48 };
    let mut evaluated = 0u64;
    for case in 0..volume {
        let mut rng = case_rng(0xE7A1, case);
        let schema = gen_schema(
            &SchemaConfig {
                free_scan_fraction: 0.8,
                input_fraction: 0.3,
                ..SchemaConfig::default()
            },
            &mut rng,
        );
        let q = gen_query(
            &schema,
            &QueryConfig {
                num_disjuncts: 1 + (case % 4) as usize,
                negative_per_disjunct: (case % 2) as usize,
                ..QueryConfig::default()
            },
            &mut rng,
        );
        let db = gen_instance(&schema, &InstanceConfig::default(), &mut rng);
        let plans = lap::core::plan_star(&q, &schema);
        let parts = plans.over.eval_parts();
        if parts.is_empty() {
            continue;
        }
        let mut reg = SourceRegistry::new(&db, &schema);
        let seq = eval_ordered_union(&parts, &mut reg);
        let par = eval_ordered_union_parallel(&parts, &db, &schema);
        match (seq, par) {
            (Ok(seq_rows), Ok((par_rows, par_stats))) => {
                evaluated += 1;
                assert_eq!(
                    seq_rows, par_rows,
                    "answer sets differ on case {case}: {q}"
                );
                let seq_stats = reg.stats();
                assert_eq!(
                    seq_stats.calls, par_stats.calls,
                    "merged call totals differ on case {case}: {q}"
                );
                assert_eq!(
                    seq_stats.tuples_returned, par_stats.tuples_returned,
                    "merged tuple totals differ on case {case}: {q}"
                );
            }
            (Err(_), Err(_)) => {} // both reject the same non-executable plan
            (s, p) => panic!(
                "evaluators disagree about executability on case {case}: \
                 sequential ok={} parallel ok={}\n  {q}",
                s.is_ok(),
                p.is_ok()
            ),
        }
    }
    assert!(
        evaluated >= volume / 2,
        "only {evaluated}/{volume} workloads were evaluable — generator drifted"
    );
}

/// End-to-end: `lapq`-style explain over an engine accumulates observable
/// cache statistics without changing any diagnosis.
#[test]
fn explain_is_invariant_under_engine_configuration() {
    let engine = ContainmentEngine::new(EngineConfig::full());
    let volume = if cfg!(feature = "slow-tests") { 120 } else { 40 };
    for case in 0..volume {
        let mut rng = case_rng(0xE8, case);
        let schema: Schema = gen_schema(&SchemaConfig::default(), &mut rng);
        let q = gen_query(&schema, &QueryConfig::default(), &mut rng);
        let plain = lap::core::explain(&q, &schema);
        let engined = lap::core::explain_with(&q, &schema, &engine);
        assert_eq!(plain, engined, "explanation changed on case {case}: {q}");
    }
    let s = engine.stats();
    assert_eq!(s.decisions, s.cache_hits + s.cache_misses, "{s}");
}
