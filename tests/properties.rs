//! Property-based tests of the paper's theorems and the implementation's
//! cross-cutting invariants, on seeded random workloads.
//!
//! Deterministic by construction: every case is derived from an explicit
//! case index through [`lap_prng::StdRng`], and every assertion message
//! carries the case index, so any failure reproduces with the printed
//! case number.
//!
//! The default tier-1 run uses a modest case count; build with
//! `--features slow-tests` to multiply the sweep.

use lap::baselines::{cq_stable, cq_stable_star, ucq_stable, ucq_stable_star};
use lap::containment::{
    contained, cq_contained, cq_contained_acyclic, cq_contained_canonical, minimize_cq,
    ucqn_contained,
};
use lap::core::{ans, answer_star, feasible, feasible_detailed, is_executable, is_orderable};
use lap::engine::eval_oracle;
use lap::ir::{parse_query, Schema, UnionQuery};
use lap::workload::{
    gen_instance, gen_query, gen_schema, InstanceConfig, QueryConfig, SchemaConfig,
};
use lap_prng::StdRng;

/// Cases per property (multiplied under `--features slow-tests`).
const CASES: u64 = if cfg!(feature = "slow-tests") { 512 } else { 64 };

fn small_schema(seed: u64) -> Schema {
    gen_schema(
        &SchemaConfig {
            num_relations: 4,
            min_arity: 1,
            max_arity: 3,
            patterns_per_relation: 2,
            input_fraction: 0.4,
            free_scan_fraction: 0.5,
        },
        &mut StdRng::seed_from_u64(seed),
    )
}

fn small_query(schema: &Schema, seed: u64, disjuncts: usize, negatives: usize) -> UnionQuery {
    gen_query(
        schema,
        &QueryConfig {
            num_disjuncts: disjuncts,
            positive_per_disjunct: 3,
            negative_per_disjunct: negatives,
            extra_vars: 2,
            head_arity: 2,
            constant_fraction: 0.1,
            constant_pool: 3,
        },
        &mut StdRng::seed_from_u64(seed),
    )
}

/// Per-case parameter sampler: derives the sub-seeds a property draws,
/// deterministically from the property id and the case index.
struct Params {
    rng: StdRng,
}

impl Params {
    fn for_case(property: u64, case: u64) -> Params {
        Params {
            rng: StdRng::seed_from_u64(property.wrapping_mul(0x9E37_79B9) ^ case),
        }
    }
    fn seed(&mut self, bound: u64) -> u64 {
        self.rng.gen_range(0..bound)
    }
    fn negs(&mut self, bound: usize) -> usize {
        self.rng.gen_range(0..bound)
    }
}

/// Proposition 4: Q ⊑ ans(Q) for every safe UCQ¬.
#[test]
fn prop_q_contained_in_ans_q() {
    for case in 0..CASES {
        let mut p = Params::for_case(1, case);
        let schema = small_schema(p.seed(64));
        let q = small_query(&schema, p.seed(1024), 2, p.negs(3));
        let a = ans(&q, &schema);
        assert!(
            ucqn_contained(&q, &a),
            "case {case}: Q ⋢ ans(Q) for {q}\nans = {a}"
        );
    }
}

/// ans is idempotent: ans(ans(Q)) = ans(Q) (Proposition 10's closure).
#[test]
fn prop_ans_is_idempotent() {
    for case in 0..CASES {
        let mut p = Params::for_case(2, case);
        let schema = small_schema(p.seed(64));
        let q = small_query(&schema, p.seed(1024), 2, 1);
        let a = ans(&q, &schema);
        let aa = ans(&a, &schema);
        assert_eq!(a.disjuncts.len(), aa.disjuncts.len(), "case {case}: {q}");
        for (d1, d2) in a.disjuncts.iter().zip(aa.disjuncts.iter()) {
            let mut b1 = d1.body.clone();
            let mut b2 = d2.body.clone();
            b1.sort();
            b2.sort();
            assert_eq!(b1, b2, "case {case}: ans not idempotent on {q}");
        }
    }
}

/// The mapping-based and canonical-database CQ containment checkers agree
/// on random positive CQ pairs.
#[test]
fn prop_cq_containment_implementations_agree() {
    for case in 0..CASES {
        let mut pr = Params::for_case(3, case);
        let schema = small_schema(pr.seed(16));
        let p = small_query(&schema, pr.seed(512), 1, 0).disjuncts[0].clone();
        let q = small_query(&schema, pr.seed(512), 1, 0).disjuncts[0].clone();
        assert_eq!(
            cq_contained(&p, &q),
            cq_contained_canonical(&p, &q),
            "case {case}: mapping vs canonical disagree on\nP = {p}\nQ = {q}"
        );
    }
}

/// The acyclic fast path agrees with the generic checker whenever it
/// applies.
#[test]
fn prop_acyclic_fast_path_agrees() {
    for case in 0..CASES {
        let mut pr = Params::for_case(4, case);
        let schema = small_schema(pr.seed(16));
        let p = small_query(&schema, pr.seed(512), 1, 0).disjuncts[0].clone();
        let q = small_query(&schema, pr.seed(512), 1, 0).disjuncts[0].clone();
        if let Some(fast) = cq_contained_acyclic(&p, &q) {
            assert_eq!(
                fast,
                cq_contained(&p, &q),
                "case {case}: acyclic path wrong on\nP = {p}\nQ = {q}"
            );
        }
    }
}

/// Containment is reflexive, and minimization preserves equivalence.
#[test]
fn prop_minimization_preserves_equivalence() {
    for case in 0..CASES {
        let mut pr = Params::for_case(5, case);
        let schema = small_schema(pr.seed(16));
        let q = small_query(&schema, pr.seed(512), 1, 0).disjuncts[0].clone();
        assert!(cq_contained(&q, &q), "case {case}: reflexivity on {q}");
        let m = minimize_cq(&q);
        assert!(
            cq_contained(&m, &q) && cq_contained(&q, &m),
            "case {case}: core not equivalent:\nQ = {q}\nM = {m}"
        );
        assert!(m.body.len() <= q.body.len(), "case {case}: {q}");
    }
}

/// Definition chain: executable ⇒ orderable ⇒ feasible.
#[test]
fn prop_executable_orderable_feasible_chain() {
    for case in 0..CASES {
        let mut p = Params::for_case(6, case);
        let schema = small_schema(p.seed(64));
        let q = small_query(&schema, p.seed(1024), 2, p.negs(3));
        if is_executable(&q, &schema) {
            assert!(
                is_orderable(&q, &schema),
                "case {case}: executable but not orderable: {q}"
            );
        }
        if is_orderable(&q, &schema) {
            assert!(
                feasible(&q, &schema),
                "case {case}: orderable but not feasible: {q}"
            );
        }
    }
}

/// FEASIBLE agrees with all four Li & Chang baselines on plain queries.
#[test]
fn prop_feasible_agrees_with_baselines() {
    for case in 0..CASES {
        let mut p = Params::for_case(7, case);
        let schema = small_schema(p.seed(32));
        let q = small_query(&schema, p.seed(512), 2, 0);
        let expected = feasible(&q, &schema);
        assert_eq!(
            ucq_stable(&q, &schema),
            expected,
            "case {case}: UCQstable on {q}"
        );
        assert_eq!(
            ucq_stable_star(&q, &schema),
            expected,
            "case {case}: UCQstable* on {q}"
        );
        let single = UnionQuery::single(q.disjuncts[0].clone());
        let expected1 = feasible(&single, &schema);
        assert_eq!(
            cq_stable(&q.disjuncts[0], &schema),
            expected1,
            "case {case}: CQstable on {single}"
        );
        assert_eq!(
            cq_stable_star(&q.disjuncts[0], &schema),
            expected1,
            "case {case}: CQstable* on {single}"
        );
    }
}

/// Feasibility is invariant under disjunct order and body order (it is a
/// semantic property).
#[test]
fn prop_feasibility_is_order_invariant() {
    for case in 0..CASES {
        let mut p = Params::for_case(8, case);
        let schema = small_schema(p.seed(32));
        let q = small_query(&schema, p.seed(512), 2, p.negs(2));
        let mut reversed = q.clone();
        reversed.disjuncts.reverse();
        for d in &mut reversed.disjuncts {
            d.body.reverse();
        }
        assert_eq!(
            feasible(&q, &schema),
            feasible(&reversed, &schema),
            "case {case}: order-dependent feasibility on {q}"
        );
    }
}

/// Runtime sandwich: ansᵤ ⊆ ANSWER(Q, D), and when the overestimate is
/// null-free, ANSWER(Q, D) ⊆ ansₒ — with equality when Q is feasible.
#[test]
fn prop_runtime_sandwich() {
    for case in 0..CASES {
        let mut p = Params::for_case(9, case);
        let schema = small_schema(p.seed(32));
        let q = small_query(&schema, p.seed(256), 2, p.negs(2));
        let db = gen_instance(
            &schema,
            &InstanceConfig {
                domain_size: 5,
                tuples_per_relation: 8,
            },
            &mut StdRng::seed_from_u64(p.seed(64)),
        );
        let oracle = eval_oracle(&q, &db).unwrap();
        let rep = answer_star(&q, &schema, &db).unwrap();
        assert!(
            rep.under.is_subset(&oracle),
            "case {case}: unsound underestimate on {q}\nunder={:?}\noracle={:?}",
            rep.under,
            oracle
        );
        let report = feasible_detailed(&q, &schema);
        if !report.plans.over.has_null() {
            assert!(
                oracle.is_subset(&rep.over),
                "case {case}: incomplete overestimate on {q}\nover={:?}\noracle={:?}",
                rep.over,
                oracle
            );
            if report.feasible {
                assert_eq!(
                    oracle, rep.over,
                    "case {case}: feasible query: overestimate must be exact on {q}"
                );
            }
        }
        if rep.is_complete() {
            assert_eq!(
                rep.under, oracle,
                "case {case}: claimed-complete answer differs from oracle on {q}"
            );
        }
    }
}

/// Wei–Lausen containment is transitive on sampled triples.
#[test]
fn prop_containment_transitive_sampled() {
    for case in 0..CASES {
        let mut p = Params::for_case(10, case);
        let schema = small_schema(p.seed(8));
        let negs = p.negs(2);
        let a = small_query(&schema, p.seed(128), 1, negs);
        let b = small_query(&schema, p.seed(128), 1, negs);
        let c = small_query(&schema, p.seed(128), 1, negs);
        if contained(&a, &b) && contained(&b, &c) {
            assert!(
                contained(&a, &c),
                "case {case}: transitivity broken:\nA={a}\nB={b}\nC={c}"
            );
        }
    }
}

/// Parser round-trip: display then re-parse is the identity.
#[test]
fn prop_display_parse_round_trip() {
    for case in 0..CASES {
        let mut p = Params::for_case(11, case);
        let schema = small_schema(p.seed(32));
        let q = small_query(&schema, p.seed(512), 2, p.negs(3));
        let text = q.to_string();
        let reparsed = parse_query(&text).unwrap();
        assert_eq!(q, reparsed, "case {case}: round trip failed for: {text}");
    }
}
