//! Property-based tests of the paper's theorems and the implementation's
//! cross-cutting invariants, on seeded random workloads.

use lap::baselines::{cq_stable, cq_stable_star, ucq_stable, ucq_stable_star};
use lap::containment::{
    contained, cq_contained, cq_contained_acyclic, cq_contained_canonical, minimize_cq,
    ucqn_contained,
};
use lap::core::{ans, answer_star, feasible, feasible_detailed, is_executable, is_orderable};
use lap::engine::eval_oracle;
use lap::ir::{parse_query, Schema, UnionQuery};
use lap::workload::{
    gen_instance, gen_query, gen_schema, InstanceConfig, QueryConfig, SchemaConfig,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_schema(seed: u64) -> Schema {
    gen_schema(
        &SchemaConfig {
            num_relations: 4,
            min_arity: 1,
            max_arity: 3,
            patterns_per_relation: 2,
            input_fraction: 0.4,
            free_scan_fraction: 0.5,
        },
        &mut StdRng::seed_from_u64(seed),
    )
}

fn small_query(schema: &Schema, seed: u64, disjuncts: usize, negatives: usize) -> UnionQuery {
    gen_query(
        schema,
        &QueryConfig {
            num_disjuncts: disjuncts,
            positive_per_disjunct: 3,
            negative_per_disjunct: negatives,
            extra_vars: 2,
            head_arity: 2,
            constant_fraction: 0.1,
            constant_pool: 3,
        },
        &mut StdRng::seed_from_u64(seed),
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// Proposition 4: Q ⊑ ans(Q) for every safe UCQ¬.
    #[test]
    fn q_contained_in_ans_q(schema_seed in 0u64..64, query_seed in 0u64..1024, negs in 0usize..3) {
        let schema = small_schema(schema_seed);
        let q = small_query(&schema, query_seed, 2, negs);
        let a = ans(&q, &schema);
        prop_assert!(ucqn_contained(&q, &a), "Q ⋢ ans(Q) for {q}\nans = {a}");
    }

    /// ans is idempotent: ans(ans(Q)) = ans(Q) (every literal of ans(Q) is
    /// answerable within ans(Q), by Proposition 10's closure argument).
    #[test]
    fn ans_is_idempotent(schema_seed in 0u64..64, query_seed in 0u64..1024) {
        let schema = small_schema(schema_seed);
        let q = small_query(&schema, query_seed, 2, 1);
        let a = ans(&q, &schema);
        let aa = ans(&a, &schema);
        prop_assert_eq!(&a.disjuncts.len(), &aa.disjuncts.len());
        for (d1, d2) in a.disjuncts.iter().zip(aa.disjuncts.iter()) {
            let mut b1 = d1.body.clone();
            let mut b2 = d2.body.clone();
            b1.sort();
            b2.sort();
            prop_assert_eq!(b1, b2, "ans not idempotent on {}", &q);
        }
    }

    /// The mapping-based and canonical-database CQ containment checkers
    /// agree on random positive CQ pairs.
    #[test]
    fn cq_containment_implementations_agree(
        schema_seed in 0u64..16, s1 in 0u64..512, s2 in 0u64..512
    ) {
        let schema = small_schema(schema_seed);
        let p = small_query(&schema, s1, 1, 0).disjuncts[0].clone();
        let q = small_query(&schema, s2, 1, 0).disjuncts[0].clone();
        prop_assert_eq!(
            cq_contained(&p, &q),
            cq_contained_canonical(&p, &q),
            "mapping vs canonical disagree on\nP = {}\nQ = {}", &p, &q
        );
    }

    /// The acyclic fast path agrees with the generic checker whenever it
    /// applies.
    #[test]
    fn acyclic_fast_path_agrees(
        schema_seed in 0u64..16, s1 in 0u64..512, s2 in 0u64..512
    ) {
        let schema = small_schema(schema_seed);
        let p = small_query(&schema, s1, 1, 0).disjuncts[0].clone();
        let q = small_query(&schema, s2, 1, 0).disjuncts[0].clone();
        if let Some(fast) = cq_contained_acyclic(&p, &q) {
            prop_assert_eq!(fast, cq_contained(&p, &q), "acyclic path wrong on\nP = {}\nQ = {}", &p, &q);
        }
    }

    /// Containment is reflexive, and minimization preserves equivalence.
    #[test]
    fn minimization_preserves_equivalence(schema_seed in 0u64..16, s in 0u64..512) {
        let schema = small_schema(schema_seed);
        let q = small_query(&schema, s, 1, 0).disjuncts[0].clone();
        prop_assert!(cq_contained(&q, &q));
        let m = minimize_cq(&q);
        prop_assert!(cq_contained(&m, &q) && cq_contained(&q, &m),
            "core not equivalent:\nQ = {}\nM = {}", &q, &m);
        prop_assert!(m.body.len() <= q.body.len());
    }

    /// Definition chain: executable ⇒ orderable ⇒ feasible.
    #[test]
    fn executable_orderable_feasible_chain(
        schema_seed in 0u64..64, query_seed in 0u64..1024, negs in 0usize..3
    ) {
        let schema = small_schema(schema_seed);
        let q = small_query(&schema, query_seed, 2, negs);
        if is_executable(&q, &schema) {
            prop_assert!(is_orderable(&q, &schema), "executable but not orderable: {}", &q);
        }
        if is_orderable(&q, &schema) {
            prop_assert!(feasible(&q, &schema), "orderable but not feasible: {}", &q);
        }
    }

    /// FEASIBLE agrees with all four Li & Chang baselines on plain queries.
    #[test]
    fn feasible_agrees_with_baselines(
        schema_seed in 0u64..32, query_seed in 0u64..512
    ) {
        let schema = small_schema(schema_seed);
        let q = small_query(&schema, query_seed, 2, 0);
        let expected = feasible(&q, &schema);
        prop_assert_eq!(ucq_stable(&q, &schema), expected, "UCQstable on {}", &q);
        prop_assert_eq!(ucq_stable_star(&q, &schema), expected, "UCQstable* on {}", &q);
        let single = UnionQuery::single(q.disjuncts[0].clone());
        let expected1 = feasible(&single, &schema);
        prop_assert_eq!(cq_stable(&q.disjuncts[0], &schema), expected1);
        prop_assert_eq!(cq_stable_star(&q.disjuncts[0], &schema), expected1);
    }

    /// Feasibility is invariant under disjunct order and body order
    /// (it is a semantic property).
    #[test]
    fn feasibility_is_order_invariant(
        schema_seed in 0u64..32, query_seed in 0u64..512, negs in 0usize..2
    ) {
        let schema = small_schema(schema_seed);
        let q = small_query(&schema, query_seed, 2, negs);
        let mut reversed = q.clone();
        reversed.disjuncts.reverse();
        for d in &mut reversed.disjuncts {
            d.body.reverse();
        }
        prop_assert_eq!(feasible(&q, &schema), feasible(&reversed, &schema),
            "order-dependent feasibility on {}", &q);
    }

    /// Runtime sandwich: ansᵤ ⊆ ANSWER(Q, D), and when the overestimate is
    /// null-free, ANSWER(Q, D) ⊆ ansₒ — with equality when Q is feasible.
    #[test]
    fn runtime_sandwich(
        schema_seed in 0u64..32, query_seed in 0u64..256, inst_seed in 0u64..64, negs in 0usize..2
    ) {
        let schema = small_schema(schema_seed);
        let q = small_query(&schema, query_seed, 2, negs);
        let db = gen_instance(
            &schema,
            &InstanceConfig { domain_size: 5, tuples_per_relation: 8 },
            &mut StdRng::seed_from_u64(inst_seed),
        );
        let oracle = eval_oracle(&q, &db).unwrap();
        let rep = answer_star(&q, &schema, &db).unwrap();
        prop_assert!(rep.under.is_subset(&oracle),
            "unsound underestimate on {}\nunder={:?}\noracle={:?}", &q, &rep.under, &oracle);
        let report = feasible_detailed(&q, &schema);
        if !report.plans.over.has_null() {
            prop_assert!(oracle.is_subset(&rep.over),
                "incomplete overestimate on {}\nover={:?}\noracle={:?}", &q, &rep.over, &oracle);
            if report.feasible {
                prop_assert_eq!(&oracle, &rep.over,
                    "feasible query: overestimate must be exact on {}", &q);
            }
        }
        if rep.is_complete() {
            prop_assert_eq!(&rep.under, &oracle, "claimed-complete answer differs from oracle on {}", &q);
        }
    }

    /// Wei–Lausen containment is transitive on sampled triples.
    #[test]
    fn containment_transitive_sampled(
        schema_seed in 0u64..8, s1 in 0u64..128, s2 in 0u64..128, s3 in 0u64..128, negs in 0usize..2
    ) {
        let schema = small_schema(schema_seed);
        let a = small_query(&schema, s1, 1, negs);
        let b = small_query(&schema, s2, 1, negs);
        let c = small_query(&schema, s3, 1, negs);
        if contained(&a, &b) && contained(&b, &c) {
            prop_assert!(contained(&a, &c), "transitivity broken:\nA={}\nB={}\nC={}", &a, &b, &c);
        }
    }

    /// Parser round-trip: display then re-parse is the identity.
    #[test]
    fn display_parse_round_trip(schema_seed in 0u64..32, query_seed in 0u64..512, negs in 0usize..3) {
        let schema = small_schema(schema_seed);
        let q = small_query(&schema, query_seed, 2, negs);
        let text = q.to_string();
        let reparsed = parse_query(&text).unwrap();
        prop_assert_eq!(q, reparsed, "round trip failed for: {}", text);
    }
}
