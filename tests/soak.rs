//! Heavy randomized soak sweeps — run explicitly with
//! `cargo test --release --test soak -- --ignored`.
//!
//! These repeat the cross-cutting invariants of `tests/properties.rs` and
//! `tests/pipeline.rs` at 10–50× the seed volume, intended for occasional
//! deep validation rather than every CI run.

use lap::baselines::{ucq_stable, ucq_stable_star};
use lap::containment::{contained, cq_contained, cq_contained_canonical, ucqn_contained};
use lap::core::{ans, answer_star, feasible, feasible_detailed};
use lap::engine::eval_oracle;
use lap::workload::{
    gen_instance, gen_query, gen_schema, InstanceConfig, QueryConfig, SchemaConfig,
};
use lap_prng::StdRng;

fn schema(seed: u64) -> lap::ir::Schema {
    gen_schema(
        &SchemaConfig {
            num_relations: 5,
            min_arity: 1,
            max_arity: 3,
            patterns_per_relation: 2,
            input_fraction: 0.4,
            free_scan_fraction: 0.5,
        },
        &mut StdRng::seed_from_u64(seed % 32),
    )
}

#[test]
#[ignore = "soak test: run with --ignored"]
fn soak_prop4_and_cor17() {
    for seed in 0..5_000u64 {
        let s = schema(seed);
        let q = gen_query(
            &s,
            &QueryConfig {
                num_disjuncts: 1 + (seed % 3) as usize,
                positive_per_disjunct: 3,
                negative_per_disjunct: (seed % 3) as usize,
                extra_vars: 2,
                head_arity: 2,
                constant_fraction: 0.1,
                constant_pool: 3,
            },
            &mut StdRng::seed_from_u64(seed),
        );
        let a = ans(&q, &s);
        assert!(ucqn_contained(&q, &a), "Prop 4 broken at seed {seed}: {q}");
        let report = feasible_detailed(&q, &s);
        if !report.plans.over.has_null() {
            assert_eq!(
                report.feasible,
                contained(&a, &q),
                "Cor 17 broken at seed {seed}: {q}"
            );
        }
    }
}

#[test]
#[ignore = "soak test: run with --ignored"]
fn soak_containment_oracles_agree() {
    for seed in 0..20_000u64 {
        let s = schema(seed);
        let cfg = QueryConfig {
            num_disjuncts: 1,
            positive_per_disjunct: 3 + (seed % 3) as usize,
            negative_per_disjunct: 0,
            extra_vars: 2,
            head_arity: 2,
            constant_fraction: 0.1,
            constant_pool: 3,
        };
        let p = gen_query(&s, &cfg, &mut StdRng::seed_from_u64(seed)).disjuncts[0].clone();
        let q = gen_query(&s, &cfg, &mut StdRng::seed_from_u64(seed + 777)).disjuncts[0].clone();
        assert_eq!(
            cq_contained(&p, &q),
            cq_contained_canonical(&p, &q),
            "containment oracles disagree at seed {seed}:\nP = {p}\nQ = {q}"
        );
    }
}

#[test]
#[ignore = "soak test: run with --ignored"]
fn soak_runtime_sandwich() {
    let icfg = InstanceConfig {
        domain_size: 6,
        tuples_per_relation: 9,
    };
    for seed in 0..2_000u64 {
        let s = schema(seed);
        let q = gen_query(
            &s,
            &QueryConfig {
                num_disjuncts: 2,
                positive_per_disjunct: 3,
                negative_per_disjunct: (seed % 2) as usize,
                extra_vars: 2,
                head_arity: 2,
                constant_fraction: 0.1,
                constant_pool: 3,
            },
            &mut StdRng::seed_from_u64(seed),
        );
        let db = gen_instance(&s, &icfg, &mut StdRng::seed_from_u64(seed + 31));
        let oracle = eval_oracle(&q, &db).unwrap();
        let rep = answer_star(&q, &s, &db).unwrap();
        assert!(rep.under.is_subset(&oracle), "seed {seed}");
        if rep.is_complete() {
            assert_eq!(rep.under, oracle, "seed {seed}");
        }
    }
}

#[test]
#[ignore = "soak test: run with --ignored"]
fn soak_baseline_agreement() {
    for seed in 0..5_000u64 {
        let s = schema(seed);
        let q = gen_query(
            &s,
            &QueryConfig {
                num_disjuncts: 1 + (seed % 4) as usize,
                positive_per_disjunct: 3,
                negative_per_disjunct: 0,
                extra_vars: 2,
                head_arity: 2,
                constant_fraction: 0.1,
                constant_pool: 3,
            },
            &mut StdRng::seed_from_u64(seed),
        );
        let f = feasible(&q, &s);
        assert_eq!(ucq_stable(&q, &s), f, "UCQstable diverged at seed {seed}: {q}");
        assert_eq!(
            ucq_stable_star(&q, &s),
            f,
            "UCQstable* diverged at seed {seed}: {q}"
        );
    }
}
