//! Flight-recorder suite: record a chaotic ANSWER\* run into the
//! structured journal, then prove the journal is good for something:
//!
//! * **replay** — a seeded degraded run, re-executed from its journal
//!   through a [`ReplaySource`], reproduces the original
//!   [`AnswerOutcome`] bit for bit without the database;
//! * **invariants** — journals validate (strictly monotone sequence,
//!   `recorded + dropped == emitted`, per-lane begin/end balance) even
//!   under the parallel executor and under ring overflow;
//! * **export** — the chrome-trace rendering round-trips through the
//!   in-repo JSON parser and stays balanced per thread lane.

use lap::core::{answer_star_replay, answer_star_resilient, answer_star_resilient_cfg};
use lap::engine::{
    execute_physical_union_parallel_degraded, ExecConfig, FaultConfig, ReplaySource,
    ResilienceConfig, RetryPolicy,
};
use lap::obs::{chrome_trace, validate_chrome_trace, JournalConfig, JournalSnapshot, Recorder};
use lap::workload::{bookstore, BookstoreConfig};
use lap_prng::StdRng;

/// A small federated bookstore with several disjuncts and a negated
/// literal, plus its parsed standing query.
fn scenario() -> (lap::ir::Program, lap::engine::Database) {
    let mut rng = StdRng::seed_from_u64(2004);
    let cfg = BookstoreConfig {
        books: 60,
        ..BookstoreConfig::default()
    };
    let bs = bookstore(&cfg, &mut rng);
    let program = lap::ir::parse_program(&bs.program_text()).unwrap();
    (program, bs.db)
}

#[test]
fn recorded_chaos_run_replays_bit_for_bit() {
    let (program, db) = scenario();
    let query = program.single_query().unwrap();
    let resilience = ResilienceConfig::chaos(0.3, 0xDECAF);

    let recorder = Recorder::with_journal(JournalConfig::replay());
    let original =
        answer_star_resilient(query, &program.schema, &db, &recorder, &resilience).unwrap();
    assert!(
        original.degradation.is_degraded(),
        "rate 0.3 over many calls should drop something"
    );

    // The journal survives a JSON round trip (file export / import).
    let snap = recorder.journal().unwrap().snapshot();
    snap.validate().expect("recorded journal validates");
    let text = snap.to_json().to_pretty();
    let snap = JournalSnapshot::from_json(&lap::obs::json::parse(&text).unwrap()).unwrap();
    assert_eq!(snap, recorder.journal().unwrap().snapshot());

    // Replay from the journal alone: no database, no fault injector.
    let source = ReplaySource::from_journal(&snap).unwrap();
    let replayed = answer_star_replay(
        query,
        &program.schema,
        source.clone(),
        resilience.retry,
        &Recorder::disabled(),
    )
    .unwrap();
    assert_eq!(replayed, original, "replay must reproduce the outcome bit for bit");
    assert_eq!(source.mismatches(), 0);
    assert_eq!(source.out_of_order(), 0);
    assert_eq!(source.remaining(), 0, "every recorded call must be consumed");
}

#[test]
fn journal_meta_carries_the_run_setup() {
    let (program, db) = scenario();
    let query = program.single_query().unwrap();
    let resilience = ResilienceConfig::chaos(0.2, 7);
    let recorder = Recorder::with_journal(JournalConfig::replay());
    answer_star_resilient(query, &program.schema, &db, &recorder, &resilience).unwrap();
    let meta = recorder.journal().unwrap().snapshot().meta;
    assert_eq!(
        meta.get("kind").and_then(lap::obs::Json::as_str),
        Some("answer*.resilient")
    );
    assert_eq!(
        meta.get("query").and_then(lap::obs::Json::as_str),
        Some(query.to_string().as_str())
    );
    let retry = RetryPolicy::from_json(meta.get("retry").unwrap()).unwrap();
    assert_eq!(retry, resilience.retry);
    assert!(meta.get("fault").and_then(|f| f.get("seed")).is_some());
}

#[test]
fn journal_invariants_hold_under_the_parallel_executor() {
    let (program, db) = scenario();
    let query = program.single_query().unwrap();
    let pair = lap::core::plan_star(query, &program.schema);
    let physical = pair.under.lower(&program.schema);
    let resilience = ResilienceConfig {
        fault: Some(FaultConfig::with_rate(0.25, 0xFEED)),
        retry: RetryPolicy::standard(),
    };
    let recorder = Recorder::with_journal(JournalConfig::light());
    let (_, _, drops) = execute_physical_union_parallel_degraded(
        &physical,
        &db,
        &program.schema,
        &recorder,
        ExecConfig::default(),
        &resilience,
    )
    .unwrap();
    let snap = recorder.journal().unwrap().snapshot();
    let check = snap.validate().expect("parallel journal validates");
    assert!(check.lanes > 1, "workers must land on distinct lanes: {check:?}");
    assert_eq!(check.begins, check.ends, "balanced per construction: {check:?}");
    assert_eq!(
        snap.events_of(lap::obs::journal::kind::DISJUNCT_DEGRADED).count(),
        drops.len(),
        "every drop decision must be journaled"
    );
}

#[test]
fn chrome_trace_round_trips_through_the_in_repo_parser() {
    let (program, db) = scenario();
    let query = program.single_query().unwrap();
    let recorder = Recorder::with_journal(JournalConfig::light());
    answer_star_resilient(
        query,
        &program.schema,
        &db,
        &recorder,
        &ResilienceConfig::chaos(0.3, 0xDECAF),
    )
    .unwrap();
    let snap = recorder.journal().unwrap().snapshot();
    let rendered = chrome_trace(&snap).to_pretty();
    let parsed = lap::obs::json::parse(&rendered).expect("chrome trace is valid JSON");
    let n = validate_chrome_trace(&parsed).expect("chrome trace is balanced");
    assert_eq!(n as u64, snap.recorded(), "one trace event per journal event");
}

#[test]
fn ring_overflow_is_bounded_and_accounted_end_to_end() {
    let (program, db) = scenario();
    let query = program.single_query().unwrap();
    let cfg = JournalConfig {
        capacity: 16,
        ..JournalConfig::light()
    };
    let recorder = Recorder::with_journal(cfg);
    answer_star_resilient(
        query,
        &program.schema,
        &db,
        &recorder,
        &ResilienceConfig::chaos(0.3, 0xDECAF),
    )
    .unwrap();
    let snap = recorder.journal().unwrap().snapshot();
    // Call begin/end pairs evict as a unit, so the ring may sit one event
    // under capacity — but never over it.
    assert!(
        (15..=16).contains(&snap.events.len()),
        "capacity is a hard bound, got {}",
        snap.events.len()
    );
    assert!(snap.dropped > 0, "a chaotic run overflows 16 slots");
    assert_eq!(snap.recorded() + snap.dropped, snap.emitted);
    snap.validate().expect("truncated journal still validates");
    // The eviction count is mirrored into the metrics registry.
    assert_eq!(recorder.snapshot().counter("journal.dropped"), snap.dropped);
    // And a truncated journal refuses to replay rather than diverging.
    let err = ReplaySource::from_journal(&snap).unwrap_err();
    assert!(err.contains("dropped"), "{err}");
}

/// Ring overflow under overlapped I/O: concurrent lanes interleave calls
/// in the ring, but a source-call begin/end pair occupies one slot and
/// evicts as a unit — overflow may drop whole pairs, never split one.
/// Pins the accounting (`recorded + dropped == emitted`, counter mirror)
/// and the per-lane begin/end balance that a torn pair would break.
#[test]
fn ring_overflow_under_concurrency_never_tears_a_call_pair() {
    let (program, db) = scenario();
    let query = program.single_query().unwrap();
    let cfg = JournalConfig {
        capacity: 16,
        ..JournalConfig::light()
    };
    let recorder = Recorder::with_journal(cfg);
    answer_star_resilient_cfg(
        query,
        &program.schema,
        &db,
        &recorder,
        &ResilienceConfig::chaos(0.3, 0xDECAF),
        ExecConfig::default().with_io_workers(8),
    )
    .unwrap();
    let snap = recorder.journal().unwrap().snapshot();
    assert!(
        (15..=16).contains(&snap.events.len()),
        "capacity is a hard bound, got {}",
        snap.events.len()
    );
    assert!(snap.dropped > 0, "a chaotic overlapped run overflows 16 slots");
    assert_eq!(snap.recorded() + snap.dropped, snap.emitted);
    assert_eq!(recorder.snapshot().counter("journal.dropped"), snap.dropped);
    snap.validate().expect("truncated overlapped journal still validates");
    // Overlapped calls land on per-worker sub-lanes, but each call's
    // begin/end halves share one ring slot: eviction keeps both or drops
    // both, and nothing can wedge between them. A torn or interleaved
    // pair — a begin with no adjacent same-lane end — fails here.
    let events: Vec<_> = snap.events.iter().collect();
    let mut call_begins = 0u64;
    for (i, e) in events.iter().enumerate() {
        if e.kind == lap::obs::journal::kind::SOURCE_CALL_BEGIN {
            call_begins += 1;
            let end = events.get(i + 1).expect("begin must be followed by its end");
            assert_eq!(end.kind, lap::obs::journal::kind::SOURCE_CALL_END);
            assert_eq!(end.lane, e.lane, "pair halves stay on one lane");
        }
    }
    let call_ends = events
        .iter()
        .filter(|e| e.kind == lap::obs::journal::kind::SOURCE_CALL_END)
        .count() as u64;
    assert_eq!(call_begins, call_ends, "no orphaned call end survives eviction");
}

/// Journal sampling under overlapped I/O: with `sample_every > 1` the
/// keep/skip decision is taken once per *call*, not once per event, so a
/// sampled journal still holds whole begin/end pairs — concurrent lanes
/// must never tear one by sampling the begin but not the end (or vice
/// versa). Also pins that sampling composes with the feedback fold: a
/// store folded from a sampled journal still passes its own validation.
#[test]
fn sampled_journal_under_concurrency_never_tears_a_call_pair() {
    let (program, db) = scenario();
    let query = program.single_query().unwrap();
    for sample_every in [2u64, 3, 7] {
        let cfg = JournalConfig {
            sample_every,
            ..JournalConfig::light()
        };
        let recorder = Recorder::with_journal(cfg);
        answer_star_resilient_cfg(
            query,
            &program.schema,
            &db,
            &recorder,
            &ResilienceConfig::chaos(0.3, 0xDECAF),
            ExecConfig::default().with_io_workers(8),
        )
        .unwrap();
        let snap = recorder.journal().unwrap().snapshot();
        snap.validate().expect("sampled overlapped journal validates");
        let events: Vec<_> = snap.events.iter().collect();
        let mut call_begins = 0u64;
        for (i, e) in events.iter().enumerate() {
            if e.kind == lap::obs::journal::kind::SOURCE_CALL_BEGIN {
                call_begins += 1;
                let end = events
                    .get(i + 1)
                    .unwrap_or_else(|| panic!("1/{sample_every}: begin without its end"));
                assert_eq!(
                    end.kind,
                    lap::obs::journal::kind::SOURCE_CALL_END,
                    "1/{sample_every}: sampling must keep or skip a pair atomically"
                );
                assert_eq!(end.lane, e.lane, "1/{sample_every}: pair halves stay on one lane");
            }
        }
        let call_ends = events
            .iter()
            .filter(|e| e.kind == lap::obs::journal::kind::SOURCE_CALL_END)
            .count() as u64;
        assert_eq!(call_begins, call_ends, "1/{sample_every}: no orphaned end");
        assert!(
            call_begins > 0,
            "1/{sample_every}: a chaotic run must keep some sampled calls"
        );
        // A sampled journal is exactly what `lapq calibrate` folds on a
        // busy system; the resulting profile must still be coherent.
        let mut store = lap::obs::FeedbackStore::new();
        store.fold(&snap);
        store.validate().expect("profile folded from a sampled journal validates");
    }
}
