//! Hand-verified containment cases stressing the Wei–Lausen procedure
//! (Theorems 12–13) beyond what the random property tests reach: deep
//! recursion, interactions between the containment mapping choice and the
//! negative-literal conditions, constants, and repeated predicates.
//!
//! Every expected verdict below was derived by hand (counterexample
//! instance or containment argument recorded in the comment).

use lap::containment::{cqn_in_ucqn, ucqn_contained, ucqn_equivalent};
use lap::ir::{parse_query, UnionQuery};

fn q(text: &str) -> UnionQuery {
    parse_query(text).unwrap()
}

#[test]
fn the_mapping_must_be_chosen_compatibly_with_negation() {
    // P has two R-atoms; Q's single R-atom can map to either, but only the
    // mapping onto R(x, b) satisfies ¬S(σy): S(a) is in P.
    // P(x) :- R(x, a), R(x, b), S(a).   (a, b existential)
    // Q(x) :- R(x, y), not S(y).
    // P ⊑ Q: map y ↦ b; need S(b) ∉ P (true) and P ∧ S(b) ⊑ Q — then both
    // mappings fail (S(a), S(b) both present)… so P ∧ S(b) must be ⊑ Q some
    // other way: it is not, so the recursion rejects y ↦ b too?
    // Counter-instance check: D = {R(1,2), R(1,3), S(2), S(3)}: P(1) holds
    // (a=2, b=3); Q(1) needs some R(1,y) with ¬S(y): none. So P ⋢ Q.
    assert!(!ucqn_contained(
        &q("Q(x) :- R(x, a), R(x, b), S(a)."),
        &q("Q(x) :- R(x, y), not S(y).")
    ));
    // But adding the disjunct covering the "all S" case closes it:
    // Q2(x) :- R(x, y), S(y) — now every R-successor is either in S or not.
    assert!(ucqn_contained(
        &q("Q(x) :- R(x, a), R(x, b), S(a)."),
        &q("Q(x) :- R(x, y), not S(y).\nQ(x) :- R(x, y), S(y).")
    ));
}

#[test]
fn three_level_excluded_middle_nesting() {
    // P ⊑ Q requires recursing through sign choices of S then T, with the
    // T-split only available underneath the ¬S branch.
    let p = q("Q(x) :- R(x).");
    let qq = q("Q(x) :- R(x), S(x).\n\
                Q(x) :- R(x), not S(x), T(x).\n\
                Q(x) :- R(x), not S(x), not T(x), U(x).\n\
                Q(x) :- R(x), not S(x), not T(x), not U(x).");
    assert!(ucqn_contained(&p, &qq));
    // Dropping the innermost completion breaks it: D = {R(1)} alone.
    let broken = qq.without_disjunct(3);
    assert!(!ucqn_contained(&p, &broken));
}

#[test]
fn recursion_with_binary_predicates_and_joins() {
    // P(x) :- E(x, y) ⊑ E(x,y) ∧ L(y) ∨ E(x,y) ∧ ¬L(y)?
    // Mapping must send Q's y to P's y in both disjuncts: yes, contained.
    assert!(ucqn_contained(
        &q("Q(x) :- E(x, y)."),
        &q("Q(x) :- E(x, y), L(y).\nQ(x) :- E(x, y), not L(y).")
    ));
    // Variant where the two disjuncts split on *different* variables:
    // E(x,y) ⊑ E(x,y)∧L(x) ∨ E(x,y)∧¬L(y)? Counterexample:
    // D = {E(1,2), L(2)} (L(1) absent): first disjunct needs L(1): no;
    // second needs ¬L(2): no. So not contained.
    assert!(!ucqn_contained(
        &q("Q(x) :- E(x, y)."),
        &q("Q(x) :- E(x, y), L(x).\nQ(x) :- E(x, y), not L(y).")
    ));
}

#[test]
fn constants_interact_with_negative_literals() {
    // P(x) :- R(x), ¬S(1) ⊑ Q(x) :- R(x), ¬S(1): reflexive.
    let p = q("Q(x) :- R(x), not S(1).");
    assert!(ucqn_contained(&p, &p));
    // P(x) :- R(x), S(2), ¬S(1) ⊑ Q(x) :- R(x), ¬S(1): drop a conjunct.
    assert!(ucqn_contained(
        &q("Q(x) :- R(x), S(2), not S(1)."),
        &q("Q(x) :- R(x), not S(1).")
    ));
    // P(x) :- R(x), ¬S(1) ⊑ Q(x) :- R(x), ¬S(2)? D = {R(1), S(2)}:
    // P(1) holds (S(1) absent), Q(1) fails. Not contained.
    assert!(!ucqn_contained(
        &q("Q(x) :- R(x), not S(1)."),
        &q("Q(x) :- R(x), not S(2).")
    ));
}

#[test]
fn left_side_negative_literals_do_not_help_the_mapping() {
    // Negative literals of P never serve as mapping targets: Q's positive
    // S(x) cannot map onto P's ¬S(x).
    assert!(!ucqn_contained(
        &q("Q(x) :- R(x), not S(x)."),
        &q("Q(x) :- R(x), S(x).")
    ));
}

#[test]
fn unsatisfiable_extension_closes_a_branch() {
    // P(x) :- R(x), ¬T(x) ⊑ R∧S ∨ R∧¬S: the ¬S branch recursion extends P
    // with S(x); P ∧ S(x) is satisfiable and must recurse again into the
    // S-branch — which its positive S(x) satisfies.
    assert!(ucqn_contained(
        &q("Q(x) :- R(x), not T(x)."),
        &q("Q(x) :- R(x), S(x).\nQ(x) :- R(x), not S(x).")
    ));
    // With the right side also negating T, the extension T(σx̄) contradicts
    // P's ¬T(x) and that branch closes as unsatisfiable — still contained.
    assert!(ucqn_contained(
        &q("Q(x) :- R(x), not T(x)."),
        &q("Q(x) :- R(x), T(x).\nQ(x) :- R(x), not T(x).")
    ));
}

#[test]
fn single_cq_entry_point_agrees_with_union_entry() {
    let p = q("Q(x) :- R(x), not S(x).");
    let qq = q("Q(x) :- R(x), S(x).\nQ(x) :- R(x), not S(x).");
    assert_eq!(
        cqn_in_ucqn(&p.disjuncts[0], &qq),
        ucqn_contained(&p, &qq)
    );
    assert!(cqn_in_ucqn(&p.disjuncts[0], &qq));
}

#[test]
fn equivalence_of_syntactically_distant_queries() {
    // The Example-3 style collapse with an extra twist: both the positive
    // and the negative twin atoms are redundant.
    let a = q("Q(a) :- B(i, a, t), L(i), B(i2, a2, t), L(i3).\n\
               Q(a) :- B(i, a, t), L(i), not B(i2, a2, t).");
    let b = q("Q(a) :- L(i), B(i, a, t).");
    assert!(ucqn_equivalent(&a, &b));
}

#[test]
fn repeated_predicate_on_both_sides() {
    // Paths of R with negation at the end.
    // P: R(x,y), R(y,z), ¬R(z,z) ⊑ Q: R(x,y), ¬R(y,y)?
    // D = {R(1,2), R(2,3), R(2,2)}: P(1): y=2,z=3? need ¬R(3,3): holds.
    // Q(1): R(1,2) with ¬R(2,2): fails. So not contained.
    assert!(!ucqn_contained(
        &q("Q(x) :- R(x, y), R(y, z), not R(z, z)."),
        &q("Q(x) :- R(x, y), not R(y, y).")
    ));
    // Reverse: Q ⊑ P? D = {R(1,2)}: Q(1) holds (¬R(2,2)); P(1) needs
    // R(2,z): none. Not contained either.
    assert!(!ucqn_contained(
        &q("Q(x) :- R(x, y), not R(y, y)."),
        &q("Q(x) :- R(x, y), R(y, z), not R(z, z).")
    ));
}

#[test]
fn deep_chain_containment_with_negation() {
    // Longer chains are contained in shorter ones (fold the tail), and the
    // negative guard must follow the fold consistently.
    assert!(ucqn_contained(
        &q("Q(x) :- R(x, y), R(y, z), R(z, w), not S(x)."),
        &q("Q(x) :- R(x, u), R(u, v), not S(x).")
    ));
    // Guard on the folded variable: P: R(x,y),R(y,z),R(z,w), ¬S(y) ⊑
    // Q: R(x,u),R(u,v), ¬S(u). Map u↦y, v↦z; the recursion extends P with
    // S(y), which contradicts P's own ¬S(y) — the branch closes as
    // unsatisfiable, so containment holds. (Semantically: u=y always
    // works, since ¬S(y) is exactly Q's guard.)
    assert!(ucqn_contained(
        &q("Q(x) :- R(x, y), R(y, z), R(z, w), not S(y)."),
        &q("Q(x) :- R(x, u), R(u, v), not S(u).")
    ));
}
