//! Integration suite for the `lapd` daemon (`lap::daemon`).
//!
//! The load-bearing contract is **byte identity**: a daemon `query`
//! response's `text` equals what one-shot `lapq run` prints for the same
//! program, facts, and options — on the plan-cache miss path, on the hit
//! path, and under concurrent sessions. The remaining tests pin error
//! containment: quota, malformed frames, and invalid requests produce
//! error frames without taking the server down.

use lap::daemon::{DaemonConfig, Server};
use lap::proto::{
    read_frame, write_frame, Client, ErrorCode, QueryOptions, Response, MAX_FRAME_BYTES,
};
use std::io::Write as _;
use std::net::TcpStream;
use std::process::Command;

fn start_server(config: DaemonConfig) -> Server {
    Server::start(config, "127.0.0.1:0").expect("ephemeral bind")
}

fn lapq_run(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_lapq"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("lapq runs");
    assert!(
        out.status.success(),
        "lapq {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("lapq output is utf-8")
}

fn read_example(name: &str) -> String {
    let path = format!("{}/examples/data/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).expect("example file")
}

fn query_text(client: &mut Client, program: &str, facts: &str, options: QueryOptions) -> String {
    match client.query(program, facts, options).expect("query frame round-trips") {
        Response::Ok { text, .. } => text,
        Response::Error { code, message, .. } => panic!("daemon error ({code}): {message}"),
    }
}

/// The daemon's answer text equals one-shot `lapq run` byte for byte —
/// for a complete bookstore answer, for example 4's partial answer with
/// a delta block, and for a resilient run with a fixed seed.
#[test]
fn daemon_answers_are_byte_identical_to_one_shot_run() {
    let server = start_server(DaemonConfig::default());
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");

    let scenarios: &[(&str, &str)] = &[
        ("bookstore.lap", "bookstore_facts.lap"),
        ("example4.lap", "example4_facts.lap"),
    ];
    for (prog, facts) in scenarios {
        let expected = lapq_run(&[
            "run",
            &format!("examples/data/{prog}"),
            &format!("examples/data/{facts}"),
        ]);
        let got = query_text(
            &mut client,
            &read_example(prog),
            &read_example(facts),
            QueryOptions::default(),
        );
        assert_eq!(got, expected, "{prog}: daemon text must match lapq run");
    }

    // The resilient path: same fault profile, same seed, same bytes.
    let expected = lapq_run(&[
        "run",
        "examples/data/bookstore.lap",
        "examples/data/bookstore_facts.lap",
        "--fault-rate",
        "0.4",
        "--fault-seed",
        "11",
        "--retry",
        "3",
        "--io-workers",
        "2",
    ]);
    let got = query_text(
        &mut client,
        &read_example("bookstore.lap"),
        &read_example("bookstore_facts.lap"),
        QueryOptions {
            fault_rate: Some(0.4),
            fault_seed: Some(11),
            retry: Some(3),
            io_workers: Some(2),
            ..QueryOptions::default()
        },
    );
    assert_eq!(got, expected, "resilient daemon text must match lapq run");
    server.shutdown();
}

/// The plan-cache hit path returns the same bytes as the miss path that
/// populated it, and cosmetic whitespace differences hit the same entry.
#[test]
fn cache_hit_path_matches_miss_path() {
    let server = start_server(DaemonConfig::default());
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");
    let program = read_example("bookstore.lap");
    let facts = read_example("bookstore_facts.lap");

    let cache_hit = |resp: &Response| -> bool {
        match resp {
            Response::Ok { data, .. } => {
                data.get("cache_hit") == Some(&lap::obs::Json::Bool(true))
            }
            Response::Error { code, message, .. } => panic!("daemon error ({code}): {message}"),
        }
    };
    let text_of = |resp: Response| -> String {
        match resp {
            Response::Ok { text, .. } => text,
            Response::Error { code, message, .. } => panic!("daemon error ({code}): {message}"),
        }
    };

    let first = client.query(&program, &facts, QueryOptions::default()).unwrap();
    assert!(!cache_hit(&first), "first request compiles (miss)");
    let second = client.query(&program, &facts, QueryOptions::default()).unwrap();
    assert!(cache_hit(&second), "repeat request is served from the cache");
    // Whitespace-only variation canonicalizes onto the same entry.
    let spaced = format!("  {}  ", program.replace('\n', "\n\n"));
    let third = client.query(&spaced, &facts, QueryOptions::default()).unwrap();
    assert!(cache_hit(&third), "whitespace variant hits the same entry");

    let first = text_of(first);
    assert_eq!(first, text_of(second), "hit path must render the same bytes");
    assert_eq!(first, text_of(third));

    let snap = server.metrics();
    assert_eq!(snap.counter("plan_cache.miss"), 1);
    assert_eq!(snap.counter("plan_cache.hit"), 2);
    server.shutdown();
}

/// Many concurrent sessions, mixed scenarios, every response
/// byte-identical to the one-shot reference output.
#[test]
fn concurrent_sessions_stay_byte_identical() {
    let server = start_server(DaemonConfig::default());
    let addr = server.addr().to_string();

    let scenarios: Vec<(String, String, String)> = [
        ("bookstore.lap", "bookstore_facts.lap"),
        ("example4.lap", "example4_facts.lap"),
    ]
    .iter()
    .map(|(p, f)| {
        let expected =
            lapq_run(&["run", &format!("examples/data/{p}"), &format!("examples/data/{f}")]);
        (read_example(p), read_example(f), expected)
    })
    .collect();

    std::thread::scope(|scope| {
        for c in 0..8 {
            let addr = addr.clone();
            let scenarios = &scenarios;
            scope.spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                for r in 0..6 {
                    let (program, facts, expected) = &scenarios[(c + r) % scenarios.len()];
                    let got =
                        query_text(&mut client, program, facts, QueryOptions::default());
                    assert_eq!(&got, expected, "client {c} request {r} diverged");
                }
            });
        }
    });

    let snap = server.metrics();
    let hits = snap.counter("plan_cache.hit");
    let misses = snap.counter("plan_cache.miss");
    assert_eq!(hits + misses, 48, "every query consulted the cache");
    assert!(misses <= 4, "compile stampede at worst doubles the 2 misses: {misses}");
    server.shutdown();
}

/// A connection beyond `max_sessions` receives one `quota` error frame
/// and is closed; the in-cap session keeps working.
#[test]
fn session_cap_refuses_with_quota_frame() {
    let server = start_server(DaemonConfig { max_sessions: 1, ..DaemonConfig::default() });
    let addr = server.addr().to_string();
    let mut inside = Client::connect(&addr).expect("first session connects");
    // Prove the slot is held before racing the second connection in.
    assert!(matches!(inside.ping().unwrap(), Response::Ok { .. }));

    let mut refused = Client::connect(&addr).expect("tcp connect still succeeds");
    match refused.ping() {
        Ok(Response::Error { code: ErrorCode::Quota, message, .. }) => {
            assert!(message.contains("session limit"), "{message}");
        }
        other => panic!("expected a quota frame, got {other:?}"),
    }

    // The refusal did not disturb the admitted session.
    let text = query_text(
        &mut inside,
        &read_example("bookstore.lap"),
        &read_example("bookstore_facts.lap"),
        QueryOptions::default(),
    );
    assert!(text.contains("answer is complete"), "{text}");
    server.shutdown();
}

/// A malformed frame (valid length prefix, garbage payload) gets a
/// `bad-frame` error reply and closes only that session; the server
/// keeps serving new connections.
#[test]
fn malformed_frame_is_answered_and_contained() {
    let server = start_server(DaemonConfig::default());
    let addr = server.addr().to_string();

    let mut raw = TcpStream::connect(&addr).expect("connect");
    let garbage = b"this is not json";
    raw.write_all(&(garbage.len() as u32).to_be_bytes()).unwrap();
    raw.write_all(garbage).unwrap();
    raw.flush().unwrap();

    let doc = read_frame(&mut raw, MAX_FRAME_BYTES).expect("error frame comes back");
    match Response::from_json(&doc).expect("frame is a response") {
        Response::Error { id, code: ErrorCode::BadFrame, .. } => assert_eq!(id, 0),
        other => panic!("expected bad-frame, got {other:?}"),
    }
    // The session is closed after a bad frame: next read sees EOF.
    match read_frame(&mut raw, MAX_FRAME_BYTES) {
        Err(_) => {}
        Ok(doc) => panic!("session should be closed, got {doc:?}"),
    }

    // The server survived: a fresh client gets answers.
    let mut client = Client::connect(&addr).expect("server still accepts");
    assert!(matches!(client.ping().unwrap(), Response::Ok { .. }));
    server.shutdown();
}

/// Valid JSON that is not a valid request draws a `bad-request` frame
/// and the session continues; a query error (unparsable program) draws
/// a `query-error` frame, ditto.
#[test]
fn request_level_errors_keep_the_session_alive() {
    let server = start_server(DaemonConfig::default());
    let addr = server.addr().to_string();

    let mut raw = TcpStream::connect(&addr).expect("connect");
    let bogus = lap::obs::Json::obj([
        ("v", lap::obs::Json::num(1)),
        ("id", lap::obs::Json::num(5)),
        ("op", lap::obs::Json::str("frobnicate")),
    ]);
    write_frame(&mut raw, &bogus).unwrap();
    let doc = read_frame(&mut raw, MAX_FRAME_BYTES).expect("reply");
    match Response::from_json(&doc).unwrap() {
        Response::Error { code: ErrorCode::BadRequest, message, .. } => {
            assert!(message.contains("unknown op"), "{message}");
        }
        other => panic!("expected bad-request, got {other:?}"),
    }
    // Same connection still serves valid requests afterwards.
    let ping = lap::proto::Request::Ping { id: 6 };
    write_frame(&mut raw, &ping.to_json()).unwrap();
    let doc = read_frame(&mut raw, MAX_FRAME_BYTES).expect("pong");
    assert!(matches!(Response::from_json(&doc).unwrap(), Response::Ok { id: 6, .. }));

    // A program that fails to parse is a query-error, not a dead session.
    let mut client = Client::connect(&addr).expect("connect");
    match client.query("this is not a program", "", QueryOptions::default()).unwrap() {
        Response::Error { code: ErrorCode::QueryError, .. } => {}
        other => panic!("expected query-error, got {other:?}"),
    }
    let text = query_text(
        &mut client,
        &read_example("bookstore.lap"),
        &read_example("bookstore_facts.lap"),
        QueryOptions::default(),
    );
    assert!(text.contains("answer is complete"), "{text}");
    server.shutdown();
}

/// Out-of-range options are rejected with `bad-request`, mirroring the
/// CLI's validation exactly.
#[test]
fn bad_options_are_rejected_like_the_cli() {
    let server = start_server(DaemonConfig::default());
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");
    let program = read_example("bookstore.lap");
    let facts = read_example("bookstore_facts.lap");

    let cases: &[QueryOptions] = &[
        QueryOptions { io_workers: Some(0), ..QueryOptions::default() },
        QueryOptions { batch_width: Some(0), ..QueryOptions::default() },
        QueryOptions { fault_rate: Some(1.5), ..QueryOptions::default() },
        QueryOptions { retry: Some(0), ..QueryOptions::default() },
    ];
    for options in cases {
        match client.query(&program, &facts, options.clone()).unwrap() {
            Response::Error { code: ErrorCode::BadRequest, .. } => {}
            other => panic!("{options:?}: expected bad-request, got {other:?}"),
        }
    }
    server.shutdown();
}

/// A client-initiated shutdown frame stops the accept loop and the
/// server handle drains cleanly.
#[test]
fn shutdown_frame_stops_the_server() {
    let server = start_server(DaemonConfig::default());
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");
    match client.shutdown().expect("shutdown acked") {
        Response::Ok { text, .. } => assert!(text.contains("shutting down"), "{text}"),
        other => panic!("expected ok, got {other:?}"),
    }
    assert!(server.is_shutting_down());
    server.shutdown();
    // The listener is gone: connects now fail (allow a beat for teardown).
    let refused = (0..50).any(|_| {
        std::thread::sleep(std::time::Duration::from_millis(10));
        TcpStream::connect(&addr).is_err()
    });
    assert!(refused, "listener should be closed after shutdown");
}

/// `stats` surfaces the plan cache's byte usage and per-entry hit
/// counts, the telemetry fold counters, and the latency histograms —
/// the operator console's at-a-glance view.
#[test]
fn stats_reports_cache_detail_telemetry_and_latency() {
    let server = start_server(DaemonConfig::default());
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");
    let bookstore = read_example("bookstore.lap");
    let bookstore_facts = read_example("bookstore_facts.lap");

    // 1 miss + 2 hits on the bookstore entry, 1 miss on example 4.
    for _ in 0..3 {
        query_text(&mut client, &bookstore, &bookstore_facts, QueryOptions::default());
    }
    query_text(
        &mut client,
        &read_example("example4.lap"),
        &read_example("example4_facts.lap"),
        QueryOptions::default(),
    );

    let (text, data) = match client.stats().expect("stats frame") {
        Response::Ok { text, data, .. } => (text, data),
        other => panic!("expected ok, got {other:?}"),
    };
    assert!(text.contains("entry:"), "per-entry lines in stats text:\n{text}");
    assert!(text.contains("2 hits"), "bookstore entry shows its hit count:\n{text}");
    assert!(text.contains("telemetry:"), "{text}");
    assert!(text.contains("latency: gate wait"), "{text}");

    let cache = data.get("plan_cache").expect("plan_cache object");
    assert!(cache.get("evictions").and_then(lap::obs::Json::as_u64).is_some());
    assert!(cache.get("bytes").and_then(lap::obs::Json::as_u64).unwrap() > 0);
    let Some(lap::obs::Json::Arr(per_entry)) = cache.get("per_entry") else {
        panic!("per_entry array missing: {data:?}");
    };
    assert_eq!(per_entry.len(), 2, "two cached programs");
    let hits: Vec<u64> = per_entry
        .iter()
        .map(|e| e.get("hits").and_then(lap::obs::Json::as_u64).unwrap())
        .collect();
    assert!(hits.contains(&2), "one entry was hit twice: {hits:?}");
    assert!(
        per_entry
            .iter()
            .all(|e| e.get("bytes").and_then(lap::obs::Json::as_u64).unwrap() > 0),
        "every entry reports its estimated bytes"
    );

    // fold_every defaults to 1: each of the 4 queries folded its events
    // before the response went out, so the stats frame already sees them.
    let telemetry = data.get("telemetry").expect("telemetry object");
    let g = |k: &str| telemetry.get(k).and_then(lap::obs::Json::as_u64).unwrap();
    assert!(g("folds") >= 4, "per-request folds: {telemetry:?}");
    assert!(g("events_folded") > 0);
    assert!(g("profiles") > 0, "folded profiles are visible");

    let latency = data.get("latency").expect("latency object");
    let count = |k: &str| {
        latency.get(k).and_then(|h| h.get("count")).and_then(lap::obs::Json::as_u64)
    };
    assert_eq!(count("request_us"), Some(4), "one sample per query");
    assert_eq!(count("gate_wait_us"), Some(4));
    server.shutdown();
}

/// The operator ops: `profile` returns the live feedback store (valid
/// under the same invariants `lapq obs-validate` checks), `health` rolls
/// up per-relation status, and `recalibrate` forces a sweep.
#[test]
fn operator_ops_expose_profile_health_and_forced_recalibration() {
    // Watcher off: only forced sweeps run, so the tallies are exact.
    let server = start_server(DaemonConfig { watch_interval_ms: 0, ..DaemonConfig::default() });
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");

    // Before any query there is nothing to report.
    match client.health().expect("health frame") {
        Response::Ok { text, .. } => {
            assert!(text.contains("no telemetry folded yet"), "{text}");
        }
        other => panic!("expected ok, got {other:?}"),
    }

    query_text(
        &mut client,
        &read_example("bookstore.lap"),
        &read_example("bookstore_facts.lap"),
        QueryOptions::default(),
    );

    // `profile` is the live store: parseable, non-empty, and valid under
    // the exported-snapshot invariants.
    match client.profile().expect("profile frame") {
        Response::Ok { text, data, .. } => {
            let store = lap::obs::FeedbackStore::from_json(&data).expect("profile parses");
            store.validate().expect("profile validates");
            assert!(!store.profiles.is_empty(), "live profile has traffic");
            assert!(!text.is_empty(), "summary text accompanies the JSON");
        }
        other => panic!("expected ok, got {other:?}"),
    }

    // `health`: every bookstore source answered cleanly, so every
    // relation rolls up as ok with health 1.00.
    match client.health().expect("health frame") {
        Response::Ok { text, data, .. } => {
            assert!(text.contains("B: health 1.00"), "{text}");
            assert!(text.contains("ok"), "{text}");
            let Some(lap::obs::Json::Arr(relations)) = data.get("relations") else {
                panic!("relations array missing: {data:?}");
            };
            assert!(!relations.is_empty());
            assert!(relations.iter().all(|r| {
                r.get("status") == Some(&lap::obs::Json::str("ok"))
            }), "{data:?}");
        }
        other => panic!("expected ok, got {other:?}"),
    }

    // `recalibrate`: the forced sweep visits the one cached entry. With
    // no drift the calibrated order matches, so nothing republishes.
    match client.recalibrate().expect("recalibrate frame") {
        Response::Ok { text, data, .. } => {
            assert!(text.starts_with("sweep: 1 entry checked"), "{text}");
            assert_eq!(
                data.get("checked").and_then(lap::obs::Json::as_u64),
                Some(1),
                "{data:?}"
            );
        }
        other => panic!("expected ok, got {other:?}"),
    }
    server.shutdown();
}

/// The tentpole contract: when a source drifts an order of magnitude
/// away from its first-observed baseline, the watcher notices (drift
/// flag), recalibrates the affected cached plan, journals the action —
/// and plans for untouched queries keep answering byte-identically.
#[test]
fn watcher_recalibrates_drifted_plans_and_preserves_unchanged_bytes() {
    let server = start_server(DaemonConfig {
        watch_interval_ms: 20,
        recalibrate_cooldown_ms: 0,
        ..DaemonConfig::default()
    });
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");

    // The planner feedback scenario: the static model scans A and probes
    // D^io per row; once A grows, the D^oo-first order is far cheaper.
    const DRIFT: &str = "A^o. D^oo. D^io.\nQ(x, y) :- A(x), D(x, y).";
    let facts_with = |a_rows: usize| {
        let mut facts = String::new();
        for i in 0..a_rows {
            facts.push_str(&format!("A({i}). "));
        }
        for i in 0..8 {
            facts.push_str(&format!("D({i}, {}). ", 100 + i));
        }
        facts
    };

    let bookstore = read_example("bookstore.lap");
    let bookstore_facts = read_example("bookstore_facts.lap");
    let expected = lapq_run(&[
        "run",
        "examples/data/bookstore.lap",
        "examples/data/bookstore_facts.lap",
    ]);
    assert_eq!(
        query_text(&mut client, &bookstore, &bookstore_facts, QueryOptions::default()),
        expected,
        "pre-drift bookstore baseline"
    );

    // Phase 1 freezes the baselines; phase 2 is the drifted reality
    // (A 100x larger), folded into the shared store request by request.
    query_text(&mut client, DRIFT, &facts_with(4), QueryOptions::default());
    let drifted_before = query_text(&mut client, DRIFT, &facts_with(400), QueryOptions::default());

    // No `recalibrate` frame is ever sent: the watcher must act alone.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        if server.metrics().counter("daemon.telemetry.recalibrations") >= 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "watcher never recalibrated; stats: {}",
            server.stats_json().to_pretty()
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    // The action is journaled with the entry's key, its relations, and
    // before/after root costs.
    let journal = server.journal().expect("server-wide journal");
    let event = journal
        .events
        .iter()
        .find(|e| e.kind == "daemon.recalibrate")
        .expect("recalibration is journaled");
    let relations = format!("{:?}", event.data.get("relations"));
    assert!(relations.contains('A'), "drifted relation recorded: {relations}");
    assert!(event.data.get("before").is_some() && event.data.get("after").is_some());
    assert_eq!(event.data.get("forced"), Some(&lap::obs::Json::Bool(false)));

    // Untouched plan, untouched bytes: the bookstore entry was disjoint
    // from the drift, so its text is still identical to one-shot lapq.
    assert_eq!(
        query_text(&mut client, &bookstore, &bookstore_facts, QueryOptions::default()),
        expected,
        "post-recalibration bookstore must stay byte-identical"
    );

    // The drifted query still returns exactly the same answer tuples
    // (the stats tail may differ — the replanned order makes fewer
    // calls, which is the point).
    let drifted_after = query_text(&mut client, DRIFT, &facts_with(400), QueryOptions::default());
    let tuples = |text: &str| -> Vec<String> {
        text.lines().filter(|l| !l.starts_with("  --") && !l.starts_with("query ")).map(str::to_owned).collect()
    };
    assert_eq!(tuples(&drifted_before), tuples(&drifted_after), "same answer, new plan");
    assert!(drifted_after.contains("answer is complete"), "{drifted_after}");
    server.shutdown();
}
