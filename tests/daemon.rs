//! Integration suite for the `lapd` daemon (`lap::daemon`).
//!
//! The load-bearing contract is **byte identity**: a daemon `query`
//! response's `text` equals what one-shot `lapq run` prints for the same
//! program, facts, and options — on the plan-cache miss path, on the hit
//! path, and under concurrent sessions. The remaining tests pin error
//! containment: quota, malformed frames, and invalid requests produce
//! error frames without taking the server down.

use lap::daemon::{DaemonConfig, Server};
use lap::proto::{
    read_frame, write_frame, Client, ErrorCode, QueryOptions, Response, MAX_FRAME_BYTES,
};
use std::io::Write as _;
use std::net::TcpStream;
use std::process::Command;

fn start_server(config: DaemonConfig) -> Server {
    Server::start(config, "127.0.0.1:0").expect("ephemeral bind")
}

fn lapq_run(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_lapq"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("lapq runs");
    assert!(
        out.status.success(),
        "lapq {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("lapq output is utf-8")
}

fn read_example(name: &str) -> String {
    let path = format!("{}/examples/data/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).expect("example file")
}

fn query_text(client: &mut Client, program: &str, facts: &str, options: QueryOptions) -> String {
    match client.query(program, facts, options).expect("query frame round-trips") {
        Response::Ok { text, .. } => text,
        Response::Error { code, message, .. } => panic!("daemon error ({code}): {message}"),
    }
}

/// The daemon's answer text equals one-shot `lapq run` byte for byte —
/// for a complete bookstore answer, for example 4's partial answer with
/// a delta block, and for a resilient run with a fixed seed.
#[test]
fn daemon_answers_are_byte_identical_to_one_shot_run() {
    let server = start_server(DaemonConfig::default());
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");

    let scenarios: &[(&str, &str)] = &[
        ("bookstore.lap", "bookstore_facts.lap"),
        ("example4.lap", "example4_facts.lap"),
    ];
    for (prog, facts) in scenarios {
        let expected = lapq_run(&[
            "run",
            &format!("examples/data/{prog}"),
            &format!("examples/data/{facts}"),
        ]);
        let got = query_text(
            &mut client,
            &read_example(prog),
            &read_example(facts),
            QueryOptions::default(),
        );
        assert_eq!(got, expected, "{prog}: daemon text must match lapq run");
    }

    // The resilient path: same fault profile, same seed, same bytes.
    let expected = lapq_run(&[
        "run",
        "examples/data/bookstore.lap",
        "examples/data/bookstore_facts.lap",
        "--fault-rate",
        "0.4",
        "--fault-seed",
        "11",
        "--retry",
        "3",
        "--io-workers",
        "2",
    ]);
    let got = query_text(
        &mut client,
        &read_example("bookstore.lap"),
        &read_example("bookstore_facts.lap"),
        QueryOptions {
            fault_rate: Some(0.4),
            fault_seed: Some(11),
            retry: Some(3),
            io_workers: Some(2),
            ..QueryOptions::default()
        },
    );
    assert_eq!(got, expected, "resilient daemon text must match lapq run");
    server.shutdown();
}

/// The plan-cache hit path returns the same bytes as the miss path that
/// populated it, and cosmetic whitespace differences hit the same entry.
#[test]
fn cache_hit_path_matches_miss_path() {
    let server = start_server(DaemonConfig::default());
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");
    let program = read_example("bookstore.lap");
    let facts = read_example("bookstore_facts.lap");

    let cache_hit = |resp: &Response| -> bool {
        match resp {
            Response::Ok { data, .. } => {
                data.get("cache_hit") == Some(&lap::obs::Json::Bool(true))
            }
            Response::Error { code, message, .. } => panic!("daemon error ({code}): {message}"),
        }
    };
    let text_of = |resp: Response| -> String {
        match resp {
            Response::Ok { text, .. } => text,
            Response::Error { code, message, .. } => panic!("daemon error ({code}): {message}"),
        }
    };

    let first = client.query(&program, &facts, QueryOptions::default()).unwrap();
    assert!(!cache_hit(&first), "first request compiles (miss)");
    let second = client.query(&program, &facts, QueryOptions::default()).unwrap();
    assert!(cache_hit(&second), "repeat request is served from the cache");
    // Whitespace-only variation canonicalizes onto the same entry.
    let spaced = format!("  {}  ", program.replace('\n', "\n\n"));
    let third = client.query(&spaced, &facts, QueryOptions::default()).unwrap();
    assert!(cache_hit(&third), "whitespace variant hits the same entry");

    let first = text_of(first);
    assert_eq!(first, text_of(second), "hit path must render the same bytes");
    assert_eq!(first, text_of(third));

    let snap = server.metrics();
    assert_eq!(snap.counter("plan_cache.miss"), 1);
    assert_eq!(snap.counter("plan_cache.hit"), 2);
    server.shutdown();
}

/// Many concurrent sessions, mixed scenarios, every response
/// byte-identical to the one-shot reference output.
#[test]
fn concurrent_sessions_stay_byte_identical() {
    let server = start_server(DaemonConfig::default());
    let addr = server.addr().to_string();

    let scenarios: Vec<(String, String, String)> = [
        ("bookstore.lap", "bookstore_facts.lap"),
        ("example4.lap", "example4_facts.lap"),
    ]
    .iter()
    .map(|(p, f)| {
        let expected =
            lapq_run(&["run", &format!("examples/data/{p}"), &format!("examples/data/{f}")]);
        (read_example(p), read_example(f), expected)
    })
    .collect();

    std::thread::scope(|scope| {
        for c in 0..8 {
            let addr = addr.clone();
            let scenarios = &scenarios;
            scope.spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                for r in 0..6 {
                    let (program, facts, expected) = &scenarios[(c + r) % scenarios.len()];
                    let got =
                        query_text(&mut client, program, facts, QueryOptions::default());
                    assert_eq!(&got, expected, "client {c} request {r} diverged");
                }
            });
        }
    });

    let snap = server.metrics();
    let hits = snap.counter("plan_cache.hit");
    let misses = snap.counter("plan_cache.miss");
    assert_eq!(hits + misses, 48, "every query consulted the cache");
    assert!(misses <= 4, "compile stampede at worst doubles the 2 misses: {misses}");
    server.shutdown();
}

/// A connection beyond `max_sessions` receives one `quota` error frame
/// and is closed; the in-cap session keeps working.
#[test]
fn session_cap_refuses_with_quota_frame() {
    let server = start_server(DaemonConfig { max_sessions: 1, ..DaemonConfig::default() });
    let addr = server.addr().to_string();
    let mut inside = Client::connect(&addr).expect("first session connects");
    // Prove the slot is held before racing the second connection in.
    assert!(matches!(inside.ping().unwrap(), Response::Ok { .. }));

    let mut refused = Client::connect(&addr).expect("tcp connect still succeeds");
    match refused.ping() {
        Ok(Response::Error { code: ErrorCode::Quota, message, .. }) => {
            assert!(message.contains("session limit"), "{message}");
        }
        other => panic!("expected a quota frame, got {other:?}"),
    }

    // The refusal did not disturb the admitted session.
    let text = query_text(
        &mut inside,
        &read_example("bookstore.lap"),
        &read_example("bookstore_facts.lap"),
        QueryOptions::default(),
    );
    assert!(text.contains("answer is complete"), "{text}");
    server.shutdown();
}

/// A malformed frame (valid length prefix, garbage payload) gets a
/// `bad-frame` error reply and closes only that session; the server
/// keeps serving new connections.
#[test]
fn malformed_frame_is_answered_and_contained() {
    let server = start_server(DaemonConfig::default());
    let addr = server.addr().to_string();

    let mut raw = TcpStream::connect(&addr).expect("connect");
    let garbage = b"this is not json";
    raw.write_all(&(garbage.len() as u32).to_be_bytes()).unwrap();
    raw.write_all(garbage).unwrap();
    raw.flush().unwrap();

    let doc = read_frame(&mut raw, MAX_FRAME_BYTES).expect("error frame comes back");
    match Response::from_json(&doc).expect("frame is a response") {
        Response::Error { id, code: ErrorCode::BadFrame, .. } => assert_eq!(id, 0),
        other => panic!("expected bad-frame, got {other:?}"),
    }
    // The session is closed after a bad frame: next read sees EOF.
    match read_frame(&mut raw, MAX_FRAME_BYTES) {
        Err(_) => {}
        Ok(doc) => panic!("session should be closed, got {doc:?}"),
    }

    // The server survived: a fresh client gets answers.
    let mut client = Client::connect(&addr).expect("server still accepts");
    assert!(matches!(client.ping().unwrap(), Response::Ok { .. }));
    server.shutdown();
}

/// Valid JSON that is not a valid request draws a `bad-request` frame
/// and the session continues; a query error (unparsable program) draws
/// a `query-error` frame, ditto.
#[test]
fn request_level_errors_keep_the_session_alive() {
    let server = start_server(DaemonConfig::default());
    let addr = server.addr().to_string();

    let mut raw = TcpStream::connect(&addr).expect("connect");
    let bogus = lap::obs::Json::obj([
        ("v", lap::obs::Json::num(1)),
        ("id", lap::obs::Json::num(5)),
        ("op", lap::obs::Json::str("frobnicate")),
    ]);
    write_frame(&mut raw, &bogus).unwrap();
    let doc = read_frame(&mut raw, MAX_FRAME_BYTES).expect("reply");
    match Response::from_json(&doc).unwrap() {
        Response::Error { code: ErrorCode::BadRequest, message, .. } => {
            assert!(message.contains("unknown op"), "{message}");
        }
        other => panic!("expected bad-request, got {other:?}"),
    }
    // Same connection still serves valid requests afterwards.
    let ping = lap::proto::Request::Ping { id: 6 };
    write_frame(&mut raw, &ping.to_json()).unwrap();
    let doc = read_frame(&mut raw, MAX_FRAME_BYTES).expect("pong");
    assert!(matches!(Response::from_json(&doc).unwrap(), Response::Ok { id: 6, .. }));

    // A program that fails to parse is a query-error, not a dead session.
    let mut client = Client::connect(&addr).expect("connect");
    match client.query("this is not a program", "", QueryOptions::default()).unwrap() {
        Response::Error { code: ErrorCode::QueryError, .. } => {}
        other => panic!("expected query-error, got {other:?}"),
    }
    let text = query_text(
        &mut client,
        &read_example("bookstore.lap"),
        &read_example("bookstore_facts.lap"),
        QueryOptions::default(),
    );
    assert!(text.contains("answer is complete"), "{text}");
    server.shutdown();
}

/// Out-of-range options are rejected with `bad-request`, mirroring the
/// CLI's validation exactly.
#[test]
fn bad_options_are_rejected_like_the_cli() {
    let server = start_server(DaemonConfig::default());
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");
    let program = read_example("bookstore.lap");
    let facts = read_example("bookstore_facts.lap");

    let cases: &[QueryOptions] = &[
        QueryOptions { io_workers: Some(0), ..QueryOptions::default() },
        QueryOptions { batch_width: Some(0), ..QueryOptions::default() },
        QueryOptions { fault_rate: Some(1.5), ..QueryOptions::default() },
        QueryOptions { retry: Some(0), ..QueryOptions::default() },
    ];
    for options in cases {
        match client.query(&program, &facts, options.clone()).unwrap() {
            Response::Error { code: ErrorCode::BadRequest, .. } => {}
            other => panic!("{options:?}: expected bad-request, got {other:?}"),
        }
    }
    server.shutdown();
}

/// A client-initiated shutdown frame stops the accept loop and the
/// server handle drains cleanly.
#[test]
fn shutdown_frame_stops_the_server() {
    let server = start_server(DaemonConfig::default());
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");
    match client.shutdown().expect("shutdown acked") {
        Response::Ok { text, .. } => assert!(text.contains("shutting down"), "{text}"),
        other => panic!("expected ok, got {other:?}"),
    }
    assert!(server.is_shutting_down());
    server.shutdown();
    // The listener is gone: connects now fail (allow a beat for teardown).
    let refused = (0..50).any(|_| {
        std::thread::sleep(std::time::Duration::from_millis(10));
        TcpStream::connect(&addr).is_err()
    });
    assert!(refused, "listener should be closed after shutdown");
}
