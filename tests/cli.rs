//! Integration tests for the `lapq` command-line front end.

use std::process::{Command, Output};

fn lapq(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_lapq"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("lapq runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn check_reports_feasibility_and_plan() {
    let out = lapq(&["check", "examples/data/bookstore.lap"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("executable: false"), "{text}");
    assert!(text.contains("orderable:  true"), "{text}");
    assert!(text.contains("feasible:   true"), "{text}");
    assert!(text.contains("C^oo(i, a)"), "{text}");
}

#[test]
fn plan_prints_both_estimates() {
    let out = lapq(&["plan", "examples/data/example4.lap"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("underestimate Qu:"));
    assert!(text.contains("overestimate Qo:"));
    assert!(text.contains("y = null"), "{text}");
}

#[test]
fn run_reports_answers_and_delta() {
    let out = lapq(&[
        "run",
        "examples/data/example4.lap",
        "examples/data/example4_facts.lap",
    ]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("(5, 6)"), "{text}");
    assert!(text.contains("may be part of the answer"), "{text}");
    assert!(text.contains("(1, null)"), "{text}");
}

#[test]
fn run_with_domain_recovers_answers() {
    let out = lapq(&[
        "run",
        "examples/data/example4.lap",
        "examples/data/example4_facts.lap",
        "--domain",
        "1000",
    ]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("recovered 1 extra certain answer"), "{text}");
    assert!(text.contains("(1, 2)"), "{text}");
}

#[test]
fn contain_decides_both_directions() {
    let out = lapq(&["contain", "examples/data/containment.lap", "P", "Q"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("P ⊑ Q: true"), "{text}");
    assert!(text.contains("Q ⊑ P: true"), "{text}");
}

#[test]
fn complete_run_says_so() {
    let out = lapq(&[
        "run",
        "examples/data/bookstore.lap",
        "examples/data/bookstore_facts.lap",
    ]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("answer is complete"), "{text}");
    assert!(text.contains("hitchhiker"), "{text}");
}

#[test]
fn missing_file_fails_cleanly() {
    let out = lapq(&["check", "examples/data/nope.lap"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn unknown_command_shows_usage() {
    let out = lapq(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn contain_rejects_unknown_query_names() {
    let out = lapq(&["contain", "examples/data/containment.lap", "P", "Zed"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("no query named Zed"));
}

#[test]
fn explain_names_the_culprit() {
    let out = lapq(&["explain", "examples/data/example4.lap"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("CULPRIT"), "{text}");
    assert!(text.contains("every pattern needs a value for y"), "{text}");
    assert!(text.contains("fully answerable"), "{text}");
}

#[test]
fn mediate_runs_the_full_pipeline() {
    let out = lapq(&[
        "mediate",
        "examples/data/mediator_views.lap",
        "examples/data/mediator_query.lap",
        "examples/data/mediator_facts.lap",
    ]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("unfolded into 4 disjunct(s)"), "{text}");
    assert!(text.contains("(1, adams, hhgttg)"), "{text}");
    assert!(text.contains("(3, lem, solaris)"), "{text}");
    assert!(!text.contains("(2, clarke"), "shelved book must be excluded: {text}");
    assert!(text.contains("answer is complete"), "{text}");
}

#[test]
fn optimize_improves_the_plan_order() {
    let out = lapq(&[
        "optimize",
        "examples/data/optimize_demo.lap",
        "examples/data/optimize_facts.lap",
    ]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("optimized: Q(t, p) :- L(i)"), "{text}");
    assert!(text.contains("minimal equivalent plan"), "{text}");
}

#[test]
fn profile_shows_per_literal_counters() {
    let out = lapq(&[
        "profile",
        "examples/data/bookstore.lap",
        "examples/data/bookstore_facts.lap",
    ]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("invoked"), "{text}");
    assert!(text.contains("not L(i)"), "{text}");
    assert!(text.contains("total source usage"), "{text}");
}

#[test]
fn answer_alias_with_zero_fault_rate_matches_plain_run() {
    let plain = lapq(&[
        "run",
        "examples/data/bookstore.lap",
        "examples/data/bookstore_facts.lap",
    ]);
    let resilient = lapq(&[
        "answer",
        "examples/data/bookstore.lap",
        "examples/data/bookstore_facts.lap",
        "--fault-rate",
        "0.0",
    ]);
    assert!(plain.status.success());
    assert!(resilient.status.success());
    let text = stdout(&resilient);
    // Same answers and completeness verdict, plus the zeroed resilience line.
    assert!(text.contains("the hitchhiker's guide"), "{text}");
    assert!(text.contains("answer is complete"), "{text}");
    assert!(text.contains("0 retry(ies), 0 source failure(s)"), "{text}");
    assert!(!text.contains("degraded"), "{text}");
    for line in stdout(&plain).lines() {
        assert!(text.contains(line), "resilient output lost line {line:?}");
    }
}

#[test]
fn total_outage_reports_degradation_deterministically() {
    let run = || {
        lapq(&[
            "answer",
            "examples/data/bookstore.lap",
            "examples/data/bookstore_facts.lap",
            "--fault-rate",
            "1.0",
            "--fault-seed",
            "7",
            "--retry",
            "3",
        ])
    };
    let a = run();
    let b = run();
    assert!(a.status.success());
    let text = stdout(&a);
    assert!(text.contains("answer is not known to be complete"), "{text}");
    assert!(text.contains("degraded"), "{text}");
    assert!(text.contains("unavailable after 3 attempt(s)"), "{text}");
    assert!(text.contains("[under]"), "{text}");
    assert_eq!(text, stdout(&b), "same seed must replay the same output");
}

#[test]
fn bad_resilience_flags_fail_cleanly() {
    let out = lapq(&[
        "answer",
        "examples/data/bookstore.lap",
        "examples/data/bookstore_facts.lap",
        "--fault-rate",
        "1.5",
    ]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(err.contains("--fault-rate must be in [0, 1]"), "{err}");

    let out = lapq(&[
        "answer",
        "examples/data/bookstore.lap",
        "examples/data/bookstore_facts.lap",
        "--retry",
        "0",
    ]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(err.contains("--retry must be in [1"), "{err}");
}

/// A scratch path under the target-adjacent temp dir, removed on drop.
struct Scratch(std::path::PathBuf);

impl Scratch {
    fn new(name: &str) -> Scratch {
        let path = std::env::temp_dir().join(format!("lapq-cli-{}-{name}", std::process::id()));
        Scratch(path)
    }

    fn as_str(&self) -> &str {
        self.0.to_str().expect("temp path is utf-8")
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

#[test]
fn recorded_run_replays_bit_for_bit_from_the_journal() {
    let journal = Scratch::new("replay.json");
    let recorded = lapq(&[
        "run",
        "examples/data/bookstore.lap",
        "examples/data/bookstore_facts.lap",
        "--fault-rate",
        "0.4",
        "--fault-seed",
        "11",
        "--latency-ms",
        "5",
        "--retry",
        "3",
        "--journal",
        journal.as_str(),
    ]);
    assert!(recorded.status.success(), "{}", String::from_utf8_lossy(&recorded.stderr));
    let validated = lapq(&["obs-validate", journal.as_str()]);
    assert!(validated.status.success());
    assert!(stdout(&validated).contains("ok (journal"), "{}", stdout(&validated));

    let replayed = lapq(&["replay", journal.as_str()]);
    assert!(replayed.status.success(), "{}", String::from_utf8_lossy(&replayed.stderr));
    assert_eq!(
        stdout(&recorded),
        stdout(&replayed),
        "replay must reproduce the recorded run byte for byte"
    );
}

/// Same contract under overlapped I/O: a degraded run recorded at
/// `--io-workers 8` replays byte for byte from the journal alone. The
/// journal's `io_workers` metadata makes replay re-derive the overlapped
/// wall-clock, so the printed virtual-ms line (which differs from a
/// serial run's) must match too. An explicitly serial rerun of the same
/// profile returns the same answers but a longer virtual clock.
#[test]
fn overlapped_run_replays_bit_for_bit_from_the_journal() {
    let journal = Scratch::new("replay-overlapped.json");
    let profile = [
        "run",
        "examples/data/bookstore.lap",
        "examples/data/bookstore_facts.lap",
        "--fault-rate",
        "0.4",
        "--fault-seed",
        "11",
        "--latency-ms",
        "20",
        "--retry",
        "3",
    ];
    let mut record_args: Vec<&str> = profile.to_vec();
    record_args.extend(["--io-workers", "8", "--journal", journal.as_str()]);
    let recorded = lapq(&record_args);
    assert!(recorded.status.success(), "{}", String::from_utf8_lossy(&recorded.stderr));
    let validated = lapq(&["obs-validate", journal.as_str()]);
    assert!(validated.status.success());
    assert!(stdout(&validated).contains("ok (journal"), "{}", stdout(&validated));

    let replayed = lapq(&["replay", journal.as_str()]);
    assert!(replayed.status.success(), "{}", String::from_utf8_lossy(&replayed.stderr));
    assert_eq!(
        stdout(&recorded),
        stdout(&replayed),
        "overlapped replay must reproduce the recorded run byte for byte"
    );

    let serial = lapq(&profile);
    assert!(serial.status.success(), "{}", String::from_utf8_lossy(&serial.stderr));
    assert_ne!(
        stdout(&serial),
        stdout(&recorded),
        "overlap must shorten the printed virtual clock"
    );
    let virtual_ms = |out: &str| -> u64 {
        let line = out
            .lines()
            .find(|l| l.contains("virtual ms"))
            .expect("resilient runs print a virtual-ms line");
        line.split_whitespace()
            .rev()
            .nth(2)
            .and_then(|w| w.parse().ok())
            .expect("virtual-ms line carries a number")
    };
    assert!(
        virtual_ms(&stdout(&recorded)) < virtual_ms(&stdout(&serial)),
        "8 workers must beat serial on the 20ms-latency profile"
    );
}

#[test]
fn io_workers_flag_rejects_zero() {
    let out = lapq(&[
        "run",
        "examples/data/bookstore.lap",
        "examples/data/bookstore_facts.lap",
        "--io-workers",
        "0",
    ]);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--io-workers must be in [1, 256]"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn chrome_trace_export_passes_validation() {
    let trace = Scratch::new("trace.json");
    let out = lapq(&[
        "run",
        "examples/data/bookstore.lap",
        "examples/data/bookstore_facts.lap",
        "--chrome-trace",
        trace.as_str(),
    ]);
    assert!(out.status.success());
    let text = std::fs::read_to_string(trace.as_str()).unwrap();
    assert!(text.contains("traceEvents"), "{text}");
    let validated = lapq(&["obs-validate", trace.as_str()]);
    assert!(validated.status.success());
    assert!(stdout(&validated).contains("balanced"), "{}", stdout(&validated));
}

#[test]
fn report_rolls_the_journal_into_tables() {
    let journal = Scratch::new("report.json");
    let out = lapq(&[
        "run",
        "examples/data/bookstore.lap",
        "examples/data/bookstore_facts.lap",
        "--fault-rate",
        "0.0",
        "--latency-ms",
        "3",
        "--journal",
        journal.as_str(),
    ]);
    assert!(out.status.success());
    let report = lapq(&["report", journal.as_str()]);
    assert!(report.status.success(), "{}", String::from_utf8_lossy(&report.stderr));
    let text = stdout(&report);
    assert!(text.contains("sources:"), "{text}");
    assert!(text.contains("p95ms"), "{text}");
    assert!(text.contains("operators:"), "{text}");
}

/// Regression pin: `--journal-sample 0` is rejected at the CLI (the
/// library additionally clamps 0 to 1 defensively — pinned in
/// `lap-obs`'s journal tests — so neither guard can be dropped).
#[test]
fn journal_sample_zero_is_rejected() {
    let journal = Scratch::new("sample-zero.json");
    let out = lapq(&[
        "run",
        "examples/data/bookstore.lap",
        "examples/data/bookstore_facts.lap",
        "--journal",
        journal.as_str(),
        "--journal-sample",
        "0",
    ]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(err.contains("--journal-sample must be at least 1"), "{err}");
}

/// Regression: a repeated flag used to silently keep the last value
/// (`--batch-width 4 --batch-width 0` ran with width 0); it is now a
/// parse error before any file is touched.
#[test]
fn duplicate_flags_are_rejected() {
    let out = lapq(&[
        "run",
        "examples/data/bookstore.lap",
        "examples/data/bookstore_facts.lap",
        "--batch-width",
        "4",
        "--batch-width",
        "0",
    ]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(err.contains("duplicate flag --batch-width"), "{err}");
}

/// Regression: a journal with no retries used to render `NaN%` in the
/// report's wait-share column when the virtual clock never advanced;
/// zero-retry sources now print `-` for both wait columns.
#[test]
fn report_zero_retry_wait_columns_render_dash() {
    let journal = Scratch::new("report-zero-retry.json");
    let out = lapq(&[
        "run",
        "examples/data/bookstore.lap",
        "examples/data/bookstore_facts.lap",
        "--fault-rate",
        "0.0",
        "--journal",
        journal.as_str(),
    ]);
    assert!(out.status.success());
    let report = lapq(&["report", journal.as_str()]);
    assert!(report.status.success(), "{}", String::from_utf8_lossy(&report.stderr));
    let text = stdout(&report);
    assert!(!text.contains("NaN"), "{text}");
    assert!(text.contains("wait%"), "{text}");
    // Every source row (between "sources:" and the next blank line) ends
    // with the dashed wait columns: no retries happened anywhere.
    let rows: Vec<&str> = text
        .lines()
        .skip_while(|l| !l.starts_with("sources:"))
        .skip(2)
        .take_while(|l| !l.trim().is_empty())
        .collect();
    assert!(!rows.is_empty(), "{text}");
    for row in rows {
        assert!(row.trim_end().ends_with('-'), "{row}");
    }
}

#[test]
fn replay_of_a_non_replayable_journal_fails_cleanly() {
    let journal = Scratch::new("light.json");
    // --chrome-trace alone records the light tier: no captured rows.
    let out = lapq(&[
        "run",
        "examples/data/bookstore.lap",
        "examples/data/bookstore_facts.lap",
        "--journal-capacity",
        "65536",
        "--journal",
        journal.as_str(),
        "--journal-sample",
        "2",
    ]);
    assert!(out.status.success());
    let replayed = lapq(&["replay", journal.as_str()]);
    assert!(!replayed.status.success());
    let err = String::from_utf8_lossy(&replayed.stderr).into_owned();
    assert!(err.contains("sampled"), "{err}");
}

#[test]
fn check_with_constraints_flips_feasibility() {
    let out = lapq(&[
        "check",
        "examples/data/example4.lap",
        "--constraints",
        "examples/data/example4_constraints.lap",
    ]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("feasible:   false"), "{text}");
    assert!(text.contains("under Σ:    feasible = true"), "{text}");
    assert!(text.contains("Σ pruned 1 of 2"), "{text}");
}
