//! Coverage for public API surface not exercised elsewhere: display forms,
//! statistics plumbing, builder edge cases, and error paths.

use lap::core::{explain, plan_star, PreparedQuery};
use lap::engine::{CallStats, Database, SourceRegistry};
use lap::ir::{
    display_adorned, parse_literal, parse_program, parse_query, AccessPattern, Schema,
};
use lap::mediator::{Mediator, MediatorError};
use lap::planner::PlanCost;

#[test]
fn call_stats_absorb_accumulates() {
    let mut a = CallStats {
        calls: 3,
        tuples_returned: 10,
        cache_hits: 1,
    };
    a.absorb(CallStats {
        calls: 2,
        tuples_returned: 5,
        cache_hits: 4,
    });
    assert_eq!(a.calls, 5);
    assert_eq!(a.tuples_returned, 15);
    assert_eq!(a.cache_hits, 5);
    assert_eq!(a.to_string(), "5 calls, 15 tuples transferred, 5 cache hits");
}

#[test]
fn adorned_display_with_negation_and_pattern() {
    let lit = parse_literal("not L(i)").unwrap();
    let p = AccessPattern::parse("i").unwrap();
    assert_eq!(display_adorned(&lit, Some(p)), "not L^i(i)");
}

#[test]
fn plan_cost_objective_weighs_calls_over_tuples() {
    let expensive_calls = PlanCost {
        calls: 100.0,
        tuples: 0.0,
    };
    let expensive_tuples = PlanCost {
        calls: 0.0,
        tuples: 100.0,
    };
    assert!(expensive_calls.total() > expensive_tuples.total());
    assert_eq!(PlanCost::zero().total(), 0.0);
}

#[test]
fn union_plan_display_includes_false_and_nulls() {
    let program = parse_program(
        "B^ii.\n\
         Q(x, y) :- B(x, y).",
    )
    .unwrap();
    let pair = plan_star(program.single_query().unwrap(), &program.schema);
    assert_eq!(pair.under.to_string(), "Q(x, y) :- false.");
    assert!(pair.over.to_string().contains("x = null"));
    assert!(pair.over.to_string().contains("y = null"));
}

#[test]
fn explanation_on_feasible_query_has_no_culprits_and_renders() {
    let program = parse_program(
        "C^oo. L^o.\n\
         Q(i) :- C(i, a), not L(i).",
    )
    .unwrap();
    let e = explain(program.single_query().unwrap(), &program.schema);
    assert!(e.feasible);
    assert_eq!(e.culprits().count(), 0);
    let shown = e.to_string();
    assert!(shown.contains("feasible: true"), "{shown}");
}

#[test]
fn prepared_query_exposes_decision_path_and_plans() {
    let program = parse_program(
        "C^oo.\n\
         Q(i) :- C(i, a).",
    )
    .unwrap();
    let prepared = PreparedQuery::compile(program.single_query().unwrap(), &program.schema);
    assert!(prepared.is_feasible());
    assert_eq!(
        prepared.decision_path(),
        lap::core::DecisionPath::PlansCoincide
    );
    assert_eq!(prepared.plans().under.parts.len(), 1);
    assert_eq!(prepared.query().disjuncts.len(), 1);
}

#[test]
fn mediator_disjunct_cap_reports_cleanly() {
    let m = Mediator::from_program(
        "S1^o. S2^o.\n\
         G(x) :- S1(x).\n\
         G(x) :- S2(x).",
    )
    .unwrap()
    .with_max_disjuncts(4);
    // 2^4 = 16 unfoldings exceeds the cap of 4.
    let q = parse_query("Q(x) :- G(x), G(x), G(x), G(x).").unwrap();
    let err = m.plan(&q).unwrap_err();
    assert!(matches!(err, MediatorError::Unfold(_)), "{err}");
    assert!(err.to_string().contains("cap"), "{err}");
}

#[test]
fn mediator_multi_level_views_through_the_facade() {
    let m = Mediator::from_program(
        "Vendor^ooo. Shelf^o.\n\
         Avail(i, a) :- Book(i, a, t), not Lib(i).\n\
         Book(i, a, t) :- Vendor(i, a, t).\n\
         Lib(i) :- Shelf(i).",
    )
    .unwrap();
    let q = parse_query("Q(a) :- Avail(i, a).").unwrap();
    let db = Database::from_facts(
        r#"Vendor(1, "adams", "hhgttg"). Vendor(2, "lem", "solaris"). Shelf(1)."#,
    )
    .unwrap();
    let (plan, report) = m.answer(&q, &db).unwrap();
    assert!(plan.feasibility.feasible);
    assert!(report.is_complete());
    assert_eq!(report.under.len(), 1); // only book 2 is off the shelf
}

#[test]
fn schema_display_reparses_into_the_same_schema() {
    let schema =
        Schema::from_patterns(&[("B", "ioo"), ("B", "oio"), ("C", "oo"), ("L", "o")]).unwrap();
    let program = parse_program(&schema.to_string()).unwrap();
    assert_eq!(program.schema, schema);
}

#[test]
fn registry_reset_keeps_cache_but_clears_counters() {
    let db = Database::from_facts("R(1). R(2).").unwrap();
    let schema = Schema::from_patterns(&[("R", "o")]).unwrap();
    let mut reg = SourceRegistry::with_cache(&db, &schema);
    let p = AccessPattern::parse("o").unwrap();
    reg.call(lap::ir::Symbol::intern("R"), p, &[None]).unwrap();
    assert_eq!(reg.stats().calls, 1);
    reg.reset_stats();
    assert_eq!(reg.stats().calls, 0);
    // Cached: the repeated call is a hit, not a new source call.
    reg.call(lap::ir::Symbol::intern("R"), p, &[None]).unwrap();
    assert_eq!(reg.stats().calls, 0);
    assert_eq!(reg.stats().cache_hits, 1);
}

#[test]
fn union_query_helpers() {
    let q = parse_query("Q(x) :- F(x).\nQ(x) :- G(x), H(x).").unwrap();
    let smaller = q.without_disjunct(0);
    assert_eq!(smaller.disjuncts.len(), 1);
    let replaced = q.with_disjunct(0, q.disjuncts[1].clone());
    assert_eq!(replaced.disjuncts[0], q.disjuncts[1]);
    assert!(!q.is_false());
    assert_eq!(q.free_vars().len(), 1);
}
