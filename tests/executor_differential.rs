//! Differential testing of the batched physical executor.
//!
//! The physical pipeline (`lower_union` + `execute_physical_union`) retired
//! the tuple-at-a-time evaluator from every production path, but the old
//! recursion survives as `eval_ordered_union_tuple` — the executable
//! specification. This harness replays seeded workloads through both and
//! fails with the exact case seed on any divergence: answer sets must match
//! bit-for-bit at every batch width (1 degenerates to tuple-at-a-time,
//! larger widths widen the dedup window), across both PLAN\* estimate
//! plans, the parallel union evaluator, and domain-enumeration runs — and
//! when the reference rejects a plan, the batched executor must reject it
//! with the same error. The columnar leg pits the vectorized executor
//! against the row baseline under faults and overlapped I/O — exact
//! stats/degradation equality — and pins byte-identical journal replay
//! for an overlapped columnar chaos run.

use lap::core::{answer_star_with_domain, plan_star};
use lap::engine::{
    eval_oracle, eval_ordered_union_tuple, execute_physical_union,
    execute_physical_union_parallel, lower_union, Database, EngineError, ExecConfig,
    SourceRegistry, Tuple,
};
use lap::ir::{ConjunctiveQuery, Schema, Var};
use lap::workload::{
    families, gen_instance, gen_query, gen_schema, InstanceConfig, QueryConfig, SchemaConfig,
};
use lap_prng::StdRng;
use std::collections::BTreeSet;

/// Batch widths under test: degenerate, mid, and the production default.
const WIDTHS: [usize; 3] = [1, 64, 1024];

const CASES: u64 = if cfg!(feature = "slow-tests") { 160 } else { 64 };

fn case_rng(salt: u64, case: u64) -> StdRng {
    StdRng::seed_from_u64(salt.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ case)
}

type Parts = [(ConjunctiveQuery, Vec<Var>)];

fn tuple_reference(
    parts: &Parts,
    db: &Database,
    schema: &Schema,
) -> Result<BTreeSet<Tuple>, EngineError> {
    let mut reg = SourceRegistry::new(db, schema);
    eval_ordered_union_tuple(parts, &mut reg)
}

fn batched(
    parts: &Parts,
    db: &Database,
    schema: &Schema,
    width: usize,
) -> Result<BTreeSet<Tuple>, EngineError> {
    let union = lower_union(parts, schema);
    let mut reg = SourceRegistry::new(db, schema);
    execute_physical_union(&union, &mut reg, ExecConfig::with_batch_size(width))
}

/// Asserts the batched result equals the reference: same answers when both
/// succeed, same error message when both fail, never a split verdict.
fn assert_agrees(
    reference: &Result<BTreeSet<Tuple>, EngineError>,
    got: Result<BTreeSet<Tuple>, EngineError>,
    context: &str,
) {
    match (reference, got) {
        (Ok(want), Ok(rows)) => assert_eq!(want, &rows, "answers differ: {context}"),
        (Err(want), Err(err)) => assert_eq!(
            want.to_string(),
            err.to_string(),
            "errors differ: {context}"
        ),
        (r, g) => panic!(
            "executability verdicts differ ({} vs {}): {context}",
            if r.is_ok() { "ok" } else { "err" },
            if g.is_ok() { "ok" } else { "err" },
        ),
    }
}

#[test]
fn batched_executor_matches_tuple_reference_on_generated_estimate_plans() {
    let mut evaluated = 0u64;
    for case in 0..CASES {
        let mut rng = case_rng(0xBA7C, case);
        let schema = gen_schema(
            &SchemaConfig {
                free_scan_fraction: 0.8,
                input_fraction: 0.3,
                ..SchemaConfig::default()
            },
            &mut rng,
        );
        let q = gen_query(
            &schema,
            &QueryConfig {
                num_disjuncts: 1 + (case % 4) as usize,
                negative_per_disjunct: (case % 2) as usize,
                ..QueryConfig::default()
            },
            &mut rng,
        );
        let db = gen_instance(&schema, &InstanceConfig::default(), &mut rng);
        let pair = plan_star(&q, &schema);
        for (which, plan) in [("under", &pair.under), ("over", &pair.over)] {
            let parts = plan.eval_parts();
            let reference = tuple_reference(&parts, &db, &schema);
            if reference.is_ok() {
                evaluated += 1;
            }
            for width in WIDTHS {
                assert_agrees(
                    &reference,
                    batched(&parts, &db, &schema, width),
                    &format!("case {case} {which} plan width {width}: {q}"),
                );
            }
        }
    }
    assert!(
        evaluated >= CASES / 2,
        "only {evaluated} evaluable plans out of {CASES} cases — generator drifted"
    );
}

#[test]
fn batched_executor_matches_tuple_reference_on_hand_shaped_families() {
    let instances = [
        ("forward_chain", families::forward_chain(6)),
        ("reversed_chain", families::reversed_chain(6)),
        ("star", families::star(5)),
        ("feasible_not_orderable", families::feasible_not_orderable(3)),
        ("gav_unfolding", families::gav_unfolding(3, 2, 1)),
    ];
    for (name, inst) in instances {
        let mut rng = case_rng(0xFA41, 7);
        let db = gen_instance(&inst.schema, &InstanceConfig::default(), &mut rng);
        let pair = plan_star(&inst.query, &inst.schema);
        for (which, plan) in [("under", &pair.under), ("over", &pair.over)] {
            let parts = plan.eval_parts();
            let reference = tuple_reference(&parts, &db, &inst.schema);
            for width in WIDTHS {
                assert_agrees(
                    &reference,
                    batched(&parts, &db, &inst.schema, width),
                    &format!("family {name} {which} plan width {width}"),
                );
            }
        }
    }
}

#[test]
fn parallel_physical_execution_matches_tuple_reference() {
    for case in 0..CASES {
        let mut rng = case_rng(0x9A21, case);
        let schema = gen_schema(
            &SchemaConfig {
                free_scan_fraction: 0.8,
                ..SchemaConfig::default()
            },
            &mut rng,
        );
        let q = gen_query(
            &schema,
            &QueryConfig {
                num_disjuncts: 2 + (case % 3) as usize,
                negative_per_disjunct: (case % 2) as usize,
                ..QueryConfig::default()
            },
            &mut rng,
        );
        let db = gen_instance(&schema, &InstanceConfig::default(), &mut rng);
        let pair = plan_star(&q, &schema);
        let parts = pair.over.eval_parts();
        if parts.is_empty() {
            continue;
        }
        let reference = tuple_reference(&parts, &db, &schema);
        let union = lower_union(&parts, &schema);
        let par = execute_physical_union_parallel(&union, &db, &schema, ExecConfig::default())
            .map(|(rows, _)| rows);
        match (&reference, par) {
            (Ok(want), Ok(rows)) => {
                assert_eq!(want, &rows, "parallel answers differ on case {case}: {q}")
            }
            (Err(_), Err(_)) => {}
            (r, p) => panic!(
                "parallel/sequential verdicts differ on case {case}: ref ok={} par ok={}\n  {q}",
                r.is_ok(),
                p.is_ok()
            ),
        }
    }
}

/// Domain-enumeration runs now execute their improved plans through the
/// physical pipeline; the refinement invariants (monotone over the base
/// underestimate, sound w.r.t. the unrestricted oracle) must survive.
#[test]
fn domain_refinement_through_physical_executor_stays_sound() {
    let mut refined = 0u64;
    for case in 0..CASES / 2 {
        let mut rng = case_rng(0xD03A, case);
        let schema = gen_schema(
            &SchemaConfig {
                free_scan_fraction: 0.6,
                input_fraction: 0.4,
                ..SchemaConfig::default()
            },
            &mut rng,
        );
        let q = gen_query(
            &schema,
            &QueryConfig {
                num_disjuncts: 1 + (case % 2) as usize,
                ..QueryConfig::default()
            },
            &mut rng,
        );
        let db = gen_instance(&schema, &InstanceConfig::default(), &mut rng);
        let Ok(rep) = answer_star_with_domain(&q, &schema, &db, 10_000) else {
            continue;
        };
        let oracle = eval_oracle(&q, &db).unwrap();
        assert!(
            rep.base.under.is_subset(&rep.improved_under),
            "case {case}: refinement lost certain answers: {q}"
        );
        assert!(
            rep.improved_under.is_subset(&oracle),
            "case {case}: refinement produced non-answers: {q}"
        );
        if rep.improved_under.len() > rep.base.under.len() {
            refined += 1;
        }
        let _ = refined;
    }
}

/// Fault-injected degraded execution, differentially: at every batch width
/// the degraded answer set must be a subset of the fault-free reference
/// (dropping a disjunct may lose answers, never invent them), and the same
/// seed must degrade identically across widths of the same run.
#[test]
fn fault_injected_runs_stay_sound_at_every_batch_width() {
    use lap::engine::{execute_physical_union_degraded, FaultConfig, RetryPolicy};
    let mut degraded_seen = 0u64;
    for case in 0..CASES / 2 {
        let mut rng = case_rng(0xFA17, case);
        let schema = gen_schema(
            &SchemaConfig {
                free_scan_fraction: 0.8,
                ..SchemaConfig::default()
            },
            &mut rng,
        );
        let q = gen_query(
            &schema,
            &QueryConfig {
                num_disjuncts: 2 + (case % 3) as usize,
                negative_per_disjunct: (case % 2) as usize,
                ..QueryConfig::default()
            },
            &mut rng,
        );
        let db = gen_instance(&schema, &InstanceConfig::default(), &mut rng);
        let pair = plan_star(&q, &schema);
        let parts = pair.under.eval_parts();
        let Ok(reference) = tuple_reference(&parts, &db, &schema) else {
            continue;
        };
        let union = lower_union(&parts, &schema);
        for width in WIDTHS {
            let mut reg = SourceRegistry::new(&db, &schema)
                .with_retry(RetryPolicy::standard().with_max_attempts(2))
                .with_fault_injection(FaultConfig::with_rate(0.3, 0xFA17 ^ case));
            let (rows, drops) =
                execute_physical_union_degraded(&union, &mut reg, ExecConfig::with_batch_size(width))
                    .unwrap();
            assert!(
                rows.is_subset(&reference),
                "case {case} width {width}: degraded run invented answers: {q}"
            );
            if !drops.is_empty() {
                degraded_seen += 1;
            }
        }
    }
    assert!(
        degraded_seen > 0,
        "fault rate 0.3 never degraded any case — injection is dead"
    );
}

/// Concurrency leg: overlapped source I/O must be invisible to everything
/// except the virtual wall-clock. At every batch width × worker count ×
/// fault rate, a degraded run on an overlapped registry must reproduce the
/// serial oracle's answers, dropped disjuncts, call statistics, retry and
/// failure counts exactly — the worker pool may reorder *completions*, but
/// outcomes are planned in issue order before any work is dispatched. At
/// rate 0 the answers must also equal the fault-free tuple reference.
#[test]
fn overlapped_execution_matches_the_serial_oracle_exactly() {
    use lap::engine::{execute_physical_union_degraded, FaultConfig, RetryPolicy};
    const IO_WORKERS: [usize; 3] = [1, 4, 16];
    const FAULT_RATES: [f64; 2] = [0.0, 0.2];
    let mut degraded_seen = 0u64;
    for case in 0..CASES / 2 {
        let mut rng = case_rng(0x10CC, case);
        let schema = gen_schema(
            &SchemaConfig {
                free_scan_fraction: 0.8,
                ..SchemaConfig::default()
            },
            &mut rng,
        );
        let q = gen_query(
            &schema,
            &QueryConfig {
                num_disjuncts: 2 + (case % 3) as usize,
                negative_per_disjunct: (case % 2) as usize,
                ..QueryConfig::default()
            },
            &mut rng,
        );
        let db = gen_instance(&schema, &InstanceConfig::default(), &mut rng);
        let pair = plan_star(&q, &schema);
        let parts = pair.under.eval_parts();
        let Ok(reference) = tuple_reference(&parts, &db, &schema) else {
            continue;
        };
        let union = lower_union(&parts, &schema);
        for rate in FAULT_RATES {
            for width in WIDTHS {
                let registry = |workers: usize| {
                    let mut reg = SourceRegistry::new(&db, &schema)
                        .with_retry(RetryPolicy::standard().with_max_attempts(2))
                        .with_io_workers(workers);
                    if rate > 0.0 {
                        reg = reg.with_fault_injection(FaultConfig::with_rate(rate, 0x10CC ^ case));
                    }
                    reg
                };
                let mut serial_reg = registry(1);
                let (serial_rows, serial_drops) = execute_physical_union_degraded(
                    &union,
                    &mut serial_reg,
                    ExecConfig::with_batch_size(width),
                )
                .unwrap();
                if rate == 0.0 {
                    assert_eq!(
                        serial_rows, reference,
                        "case {case} width {width}: fault-free run lost answers: {q}"
                    );
                    assert!(serial_drops.is_empty());
                }
                if !serial_drops.is_empty() {
                    degraded_seen += 1;
                }
                for workers in IO_WORKERS {
                    let mut reg = registry(workers);
                    let (rows, drops) = execute_physical_union_degraded(
                        &union,
                        &mut reg,
                        ExecConfig::with_batch_size(width).with_io_workers(workers),
                    )
                    .unwrap();
                    let ctx = format!("case {case} rate {rate} width {width} workers {workers}: {q}");
                    assert_eq!(rows, serial_rows, "answers differ: {ctx}");
                    assert_eq!(drops, serial_drops, "dropped disjuncts differ: {ctx}");
                    assert_eq!(reg.stats(), serial_reg.stats(), "call stats differ: {ctx}");
                    assert_eq!(
                        reg.retries_observed(),
                        serial_reg.retries_observed(),
                        "retry counts differ: {ctx}"
                    );
                    assert_eq!(
                        reg.failures_observed(),
                        serial_reg.failures_observed(),
                        "failure counts differ: {ctx}"
                    );
                    assert!(
                        reg.virtual_elapsed_ms() <= serial_reg.virtual_elapsed_ms(),
                        "overlap lengthened the virtual wall-clock: {ctx}"
                    );
                }
            }
        }
    }
    assert!(
        degraded_seen > 0,
        "fault rate 0.2 never degraded any case — the concurrency leg is not exercising retries"
    );
}

/// Columnar leg: the vectorized executor against the row baseline and the
/// tuple oracle, across widths × fault rates × worker counts. The columnar
/// executor assembles batch windows of exactly the same live-row counts as
/// the row executor, so *everything* observable — answers, dropped
/// disjuncts, call statistics, retry/failure counts, the virtual clock —
/// must be exactly equal, even mid-chaos (identical wire sequences draw
/// identical faults).
#[test]
fn columnar_executor_matches_row_baseline_and_tuple_oracle() {
    use lap::engine::{execute_physical_union_degraded, FaultConfig, RetryPolicy};
    const IO_WORKERS: [usize; 2] = [1, 8];
    const FAULT_RATES: [f64; 2] = [0.0, 0.2];
    let mut degraded_seen = 0u64;
    for case in 0..CASES / 2 {
        let mut rng = case_rng(0xC01A, case);
        let schema = gen_schema(
            &SchemaConfig {
                free_scan_fraction: 0.8,
                ..SchemaConfig::default()
            },
            &mut rng,
        );
        let q = gen_query(
            &schema,
            &QueryConfig {
                num_disjuncts: 2 + (case % 3) as usize,
                negative_per_disjunct: (case % 2) as usize,
                ..QueryConfig::default()
            },
            &mut rng,
        );
        let db = gen_instance(&schema, &InstanceConfig::default(), &mut rng);
        let pair = plan_star(&q, &schema);
        let parts = pair.under.eval_parts();
        let Ok(reference) = tuple_reference(&parts, &db, &schema) else {
            continue;
        };
        let union = lower_union(&parts, &schema);
        for rate in FAULT_RATES {
            for width in WIDTHS {
                for workers in IO_WORKERS {
                    let registry = || {
                        let mut reg = SourceRegistry::new(&db, &schema)
                            .with_retry(RetryPolicy::standard().with_max_attempts(2))
                            .with_io_workers(workers);
                        if rate > 0.0 {
                            reg = reg
                                .with_fault_injection(FaultConfig::with_rate(rate, 0xC01A ^ case));
                        }
                        reg
                    };
                    let cfg = ExecConfig::with_batch_size(width).with_io_workers(workers);
                    let mut row_reg = registry();
                    let (row_rows, row_drops) =
                        execute_physical_union_degraded(&union, &mut row_reg, cfg.rows()).unwrap();
                    let mut col_reg = registry();
                    let (col_rows, col_drops) =
                        execute_physical_union_degraded(&union, &mut col_reg, cfg).unwrap();
                    let ctx =
                        format!("case {case} rate {rate} width {width} workers {workers}: {q}");
                    assert_eq!(col_rows, row_rows, "answers differ: {ctx}");
                    assert_eq!(col_drops, row_drops, "dropped disjuncts differ: {ctx}");
                    assert_eq!(col_reg.stats(), row_reg.stats(), "call stats differ: {ctx}");
                    assert_eq!(
                        col_reg.retries_observed(),
                        row_reg.retries_observed(),
                        "retry counts differ: {ctx}"
                    );
                    assert_eq!(
                        col_reg.failures_observed(),
                        row_reg.failures_observed(),
                        "failure counts differ: {ctx}"
                    );
                    assert_eq!(
                        col_reg.virtual_elapsed_ms(),
                        row_reg.virtual_elapsed_ms(),
                        "virtual clocks differ: {ctx}"
                    );
                    if rate == 0.0 {
                        assert_eq!(col_rows, reference, "fault-free columnar run: {ctx}");
                        assert!(col_drops.is_empty(), "{ctx}");
                    } else {
                        assert!(
                            col_rows.is_subset(&reference),
                            "degraded columnar run invented answers: {ctx}"
                        );
                        if !col_drops.is_empty() {
                            degraded_seen += 1;
                        }
                    }
                }
            }
        }
    }
    assert!(
        degraded_seen > 0,
        "fault rate 0.2 never degraded any case — the columnar chaos leg is dead"
    );
}

/// Pinned journal fidelity for an overlapped columnar chaos run: the same
/// configuration records a byte-identical journal twice; the row executor
/// records the *same events* (the journals differ only in the `columnar`
/// metadata key); and replaying the journal — no database, no fault
/// injector — reproduces the outcome bit for bit at the recorded batch
/// width and worker count.
#[test]
fn overlapped_columnar_chaos_run_replays_byte_identically() {
    use lap::core::{answer_star_replay_cfg, answer_star_resilient_cfg};
    use lap::engine::{ReplaySource, ResilienceConfig};
    use lap::obs::{JournalConfig, JournalSnapshot, Recorder};
    use lap::workload::{bookstore, BookstoreConfig};

    let mut rng = case_rng(0xC01A, 1);
    let bs = bookstore(
        &BookstoreConfig {
            books: 60,
            ..BookstoreConfig::default()
        },
        &mut rng,
    );
    let program = lap::ir::parse_program(&bs.program_text()).unwrap();
    let query = program.single_query().unwrap();
    let resilience = ResilienceConfig::chaos(0.3, 0xC01A);
    let cfg = ExecConfig::with_batch_size(64).with_io_workers(8);

    let record = |cfg: ExecConfig| {
        let recorder = Recorder::with_journal(JournalConfig::replay());
        let outcome = answer_star_resilient_cfg(
            query,
            &program.schema,
            &bs.db,
            &recorder,
            &resilience,
            cfg,
        )
        .unwrap();
        (outcome, recorder.journal().unwrap().snapshot())
    };

    let (original, snap) = record(cfg);
    assert!(
        original.degradation.is_degraded(),
        "rate 0.3 over many calls should drop something"
    );
    snap.validate().expect("recorded journal validates");

    // Determinism: the identical configuration records identical bytes.
    let (rerun, resnap) = record(cfg);
    assert_eq!(rerun, original);
    assert_eq!(
        snap.to_json().to_pretty(),
        resnap.to_json().to_pretty(),
        "re-recording the same overlapped columnar run must be byte-identical"
    );

    // Wire identity: the row executor walks the same windows, so it emits
    // the same journal events — only the `columnar` meta key may differ,
    // plus `rows_out` on a batch aborted mid-probe (`ok: false`): the row
    // path counts survivors emitted before the failing call, the vectorized
    // path aborts before compaction and reports 0. Both discard the partial
    // output, so the count is diagnostic only; normalize it to 0 here.
    let (row_outcome, row_snap) = record(cfg.rows());
    assert_eq!(row_outcome, original, "row and columnar outcomes must match");
    let normalize = |mut s: JournalSnapshot| {
        s.meta = lap::obs::Json::Null;
        for event in &mut s.events {
            if event.kind == lap::obs::journal::kind::BATCH_END
                && event.data.get("ok") == Some(&lap::obs::Json::Bool(false))
            {
                if let lap::obs::Json::Obj(pairs) = &mut event.data {
                    for (key, value) in pairs {
                        if key == "rows_out" {
                            *value = lap::obs::Json::num(0);
                        }
                    }
                }
            }
        }
        s
    };
    assert_eq!(
        normalize(snap.clone()),
        normalize(row_snap),
        "row and columnar executors must record identical journal events"
    );

    // Replay from the journal alone, at the recorded width and workers.
    let source = ReplaySource::from_journal(&snap).unwrap();
    let replayed = answer_star_replay_cfg(
        query,
        &program.schema,
        source.clone(),
        resilience.retry,
        &Recorder::disabled(),
        cfg,
    )
    .unwrap();
    assert_eq!(replayed, original, "replay must reproduce the outcome bit for bit");
    assert_eq!(source.mismatches(), 0);
    assert_eq!(source.remaining(), 0, "every recorded call must be consumed");
}

/// Lazy error semantics, pinned: a broken operator behind an empty prefix
/// is never reached (both paths answer), and behind a non-empty prefix both
/// paths raise the *same* error.
#[test]
fn lazy_errors_match_the_tuple_reference_exactly() {
    let schema = Schema::from_patterns(&[("C", "oo"), ("B", "ii"), ("L", "o")]).unwrap();
    let db = Database::from_facts(r#"C(1, "a"). C(2, "b"). L(1)."#).unwrap();
    let broken: &[&str] = &[
        // Unknown relation behind a prefix that may or may not be empty.
        "Q(a) :- C(9, a), Zzz(a, b).",
        "Q(a) :- C(1, a), Zzz(a, b).",
        // No usable pattern (B^ii with nothing bound).
        "Q(x) :- B(x, y).",
        // Unbound negation.
        "Q(i) :- C(i, a), not B(i, z).",
        // Unbound head variable.
        "Q(i, z) :- C(i, a).",
    ];
    for text in broken {
        let cq = lap::ir::parse_cq(text).unwrap();
        let parts = vec![(cq, Vec::<Var>::new())];
        let reference = tuple_reference(&parts, &db, &schema);
        for width in WIDTHS {
            assert_agrees(
                &reference,
                batched(&parts, &db, &schema, width),
                &format!("broken plan {text:?} width {width}"),
            );
        }
    }
}
