//! Chaos suite: deterministic fault injection end to end.
//!
//! Every test here runs ANSWER\* under a seeded [`ResilienceConfig`] and
//! checks the degradation contract of `answer_star_resilient`:
//!
//! * **determinism** — the same seed replays the same faults, retries,
//!   and degradation report bit for bit;
//! * **soundness** — the degraded underestimate is always a subset of the
//!   fault-free underestimate (a failing disjunct is dropped whole, never
//!   partially answered);
//! * **honesty** — whenever any disjunct degraded, the completeness
//!   verdict is not `Complete`;
//! * **equivalence at rate 0** — the resilient path with a fault-free
//!   profile is observationally identical to the plain path.

use lap::core::{answer_star, answer_star_resilient, Completeness};
use lap::engine::{
    execute_physical_union_parallel_degraded, ExecConfig, FaultConfig, ResilienceConfig,
    RetryPolicy,
};
use lap::obs::Recorder;
use lap::workload::{bookstore, chaos_ladder, BookstoreConfig};
use lap_prng::StdRng;

/// A small federated bookstore with several disjuncts and a negated
/// literal, plus its parsed standing query.
fn scenario() -> (lap::ir::Program, lap::engine::Database) {
    let mut rng = StdRng::seed_from_u64(2004);
    let cfg = BookstoreConfig {
        books: 60,
        ..BookstoreConfig::default()
    };
    let bs = bookstore(&cfg, &mut rng);
    let program = lap::ir::parse_program(&bs.program_text()).unwrap();
    (program, bs.db)
}

#[test]
fn same_seed_replays_the_same_degradation_bit_for_bit() {
    let (program, db) = scenario();
    let query = program.single_query().unwrap();
    let resilience = ResilienceConfig::chaos(0.3, 0xDECAF);
    let run = || {
        answer_star_resilient(query, &program.schema, &db, &Recorder::disabled(), &resilience)
            .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.report.under, b.report.under);
    assert_eq!(a.report.over, b.report.over);
    assert_eq!(a.report.completeness, b.report.completeness);
    assert_eq!(a.retries, b.retries);
    assert_eq!(a.failures, b.failures);
    assert_eq!(a.virtual_ms, b.virtual_ms);
    // The degradation report itself — indices, heads, relations, attempt
    // counts, and reasons — renders identically.
    assert_eq!(a.degradation.to_string(), b.degradation.to_string());
    assert!(a.degradation.is_degraded(), "rate 0.3 over many calls should drop something");
}

#[test]
fn rate_zero_profile_is_observationally_plain() {
    let (program, db) = scenario();
    let query = program.single_query().unwrap();
    let plain = answer_star(query, &program.schema, &db).unwrap();
    for scenario in chaos_ladder(99).iter().take(1) {
        let outcome = answer_star_resilient(
            query,
            &program.schema,
            &db,
            &Recorder::disabled(),
            &scenario.resilience,
        )
        .unwrap();
        assert_eq!(outcome.report.under, plain.under);
        assert_eq!(outcome.report.over, plain.over);
        assert_eq!(outcome.report.completeness, plain.completeness);
        assert!(!outcome.degradation.is_degraded());
        assert_eq!(outcome.retries, 0);
        assert_eq!(outcome.failures, 0);
    }
}

#[test]
fn degraded_under_is_sound_across_the_ladder() {
    let (program, db) = scenario();
    let query = program.single_query().unwrap();
    let plain = answer_star(query, &program.schema, &db).unwrap();
    for family_seed in 0..4u64 {
        for scenario in chaos_ladder(family_seed) {
            let outcome = answer_star_resilient(
                query,
                &program.schema,
                &db,
                &Recorder::disabled(),
                &scenario.resilience,
            )
            .unwrap();
            assert!(
                outcome.report.under.is_subset(&plain.under),
                "{} (family {family_seed}): degraded under must never invent answers",
                scenario.name
            );
            if outcome.degradation.is_degraded() {
                assert_ne!(
                    outcome.report.completeness,
                    Completeness::Complete,
                    "{} (family {family_seed}): degraded runs must not claim completeness",
                    scenario.name
                );
            }
            // Every failure is either retried away or ends in a dropped
            // disjunct; the counters must reflect that accounting.
            assert!(outcome.failures >= outcome.degradation.total() as u64);
        }
    }
}

#[test]
fn parallel_degraded_executor_is_sound_and_deterministic() {
    let (program, db) = scenario();
    let query = program.single_query().unwrap();
    let pair = lap::core::plan_star(query, &program.schema);
    let physical = pair.under.lower(&program.schema);
    let plain = answer_star(query, &program.schema, &db).unwrap();
    let resilience = ResilienceConfig {
        fault: Some(FaultConfig::with_rate(0.25, 0xFEED)),
        retry: RetryPolicy::standard(),
    };
    let run = || {
        execute_physical_union_parallel_degraded(
            &physical,
            &db,
            &program.schema,
            &Recorder::disabled(),
            ExecConfig::default(),
            &resilience,
        )
        .unwrap()
    };
    let (rows_a, _, drops_a) = run();
    let (rows_b, _, drops_b) = run();
    assert!(rows_a.is_subset(&plain.under), "parallel degraded under must stay sound");
    assert_eq!(rows_a, rows_b, "parallel degradation must be deterministic");
    assert_eq!(drops_a.len(), drops_b.len());
    for (x, y) in drops_a.iter().zip(drops_b.iter()) {
        assert_eq!(x.to_string(), y.to_string());
    }
}

#[test]
fn latency_profile_times_out_deterministically() {
    let (program, db) = scenario();
    let query = program.single_query().unwrap();
    let slow = lap::workload::slow_source(0.0, 11);
    let run = || {
        answer_star_resilient(query, &program.schema, &db, &Recorder::disabled(), &slow.resilience)
            .unwrap()
    };
    let a = run();
    let b = run();
    // Jittered latency above the 25ms timeout faults some calls even at
    // error rate 0; the virtual clock and outcome still replay exactly.
    assert!(a.failures > 0, "jitter 30ms over timeout 25ms must fault some calls");
    assert!(a.virtual_ms > 0);
    assert_eq!(a.virtual_ms, b.virtual_ms);
    assert_eq!(a.degradation.to_string(), b.degradation.to_string());
    assert_eq!(a.report.under, b.report.under);
    let plain = answer_star(query, &program.schema, &db).unwrap();
    assert!(a.report.under.is_subset(&plain.under));
}
