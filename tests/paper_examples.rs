//! The ten worked examples of the paper, reproduced end-to-end (experiment
//! E1). Each test states the paper's claim and checks it programmatically.

use lap::baselines::{cq_stable, cq_stable_star, ucq_stable, ucq_stable_star};
use lap::containment::{cq_contained, cq_equivalent, minimize_cq, minimize_ucq, ucq_equivalent};
use lap::core::{
    ans, answer_star, answer_star_with_domain, answerable_split, feasible, feasible_detailed,
    is_executable, is_orderable, plan_star, Completeness, DecisionPath,
};
use lap::engine::{Database, SourceRegistry, Value};
use lap::ir::{parse_program, parse_query, AccessPattern, Symbol};

fn program(text: &str) -> lap::ir::Program {
    parse_program(text).expect("example parses")
}

/// Example 1: the bookstore query is not executable as written, but
/// feasible — calling C first binds i and a; a negated call cannot produce
/// bindings.
#[test]
fn example_1_bookstore() {
    let p = program(
        "B^ioo. B^oio. C^oo. L^o.\n\
         Q(i, a, t) :- B(i, a, t), C(i, a), not L(i).",
    );
    let q = p.single_query().unwrap();
    assert!(!is_executable(q, &p.schema), "left-to-right execution fails");
    assert!(is_orderable(q, &p.schema), "reordering yields a plan");
    let report = feasible_detailed(q, &p.schema);
    assert!(report.feasible);
    assert_eq!(report.decided_by, DecisionPath::PlansCoincide);
    // The produced plan starts with C (the only free-scan source).
    let plan = &report.plans.under.parts[0];
    assert_eq!(plan.cq.body[0].atom.predicate.name.as_str(), "C");
}

/// Example 2: with B^ioo and B^oio one can retrieve (author, title) pairs
/// given an ISBN and titles given an author, but not all (author, title)
/// pairs with no input.
#[test]
fn example_2_access_patterns() {
    let db = Database::from_facts(
        r#"B(1, "tolkien", "lotr"). B(2, "adams", "hhgttg")."#,
    )
    .unwrap();
    let schema = lap::ir::Schema::from_patterns(&[("B", "ioo"), ("B", "oio")]).unwrap();
    let mut reg = SourceRegistry::new(&db, &schema);
    let b = Symbol::intern("B");
    // Given an ISBN: the set {(a, t) | B(i, a, t)}.
    let rows = reg
        .call(b, AccessPattern::parse("ioo").unwrap(), &[Some(Value::int(1)), None, None])
        .unwrap();
    assert_eq!(rows.len(), 1);
    // Given an author: the set {t | ∃i B(i, a, t)}.
    let rows = reg
        .call(
            b,
            AccessPattern::parse("oio").unwrap(),
            &[None, Some(Value::str("adams")), None],
        )
        .unwrap();
    assert_eq!(rows.len(), 1);
    // No input at all: no pattern admits it.
    assert!(reg
        .call(b, AccessPattern::parse("ooo").unwrap(), &[None, None, None])
        .is_err());
}

/// Example 3: feasible but not orderable — the two-rule union with the
/// unbindable i', a' is equivalent to the executable Q'(a) :- L(i), B(i,a,t).
#[test]
fn example_3_feasible_not_orderable() {
    let p = program(
        "B^ioo. B^oio. L^o.\n\
         Q(a) :- B(i, a, t), L(i), B(i2, a2, t).\n\
         Q(a) :- B(i, a, t), L(i), not B(i2, a2, t).",
    );
    let q = p.single_query().unwrap();
    assert!(!is_orderable(q, &p.schema));
    let report = feasible_detailed(q, &p.schema);
    assert!(report.feasible);
    assert_eq!(report.decided_by, DecisionPath::ContainmentCheck);
    // The equivalence the paper states:
    let q_prime = parse_query("Q(a) :- L(i), B(i, a, t).").unwrap();
    assert!(lap::containment::ucqn_equivalent(q, &q_prime));
}

/// Example 4: PLAN* produces exactly the under/overestimate plans printed
/// in the paper.
#[test]
fn example_4_plan_star() {
    let p = program(
        "S^o. R^oo. B^ii. T^oo.\n\
         Q(x, y) :- not S(z), R(x, z), B(x, y).\n\
         Q(x, y) :- T(x, y).",
    );
    let pair = plan_star(p.single_query().unwrap(), &p.schema);
    let under: Vec<String> = pair.under.parts.iter().map(|p| p.to_string()).collect();
    let over: Vec<String> = pair.over.parts.iter().map(|p| p.to_string()).collect();
    assert_eq!(under, vec!["Q(x, y) :- T(x, y)."]);
    assert_eq!(
        over,
        vec![
            "Q(x, y) :- R(x, z), not S(z), y = null.",
            "Q(x, y) :- T(x, y).",
        ]
    );
    assert!(!feasible(p.single_query().unwrap(), &p.schema));
}

/// Example 5: for an instance where R(x,z), ¬S(z) yields nothing, the
/// infeasible query still gets a provably complete answer at runtime.
#[test]
fn example_5_runtime_complete() {
    let p = program(
        "S^o. R^oo. B^ii. T^oo.\n\
         Q(x, y) :- not S(z), R(x, z), B(x, y).\n\
         Q(x, y) :- T(x, y).",
    );
    let q = p.single_query().unwrap();
    assert!(!feasible(q, &p.schema));
    let db = Database::from_facts("R(1, 10). S(10). T(7, 8). B(1, 4).").unwrap();
    let rep = answer_star(q, &p.schema, &db).unwrap();
    assert!(rep.is_complete(), "answer is complete despite infeasibility");
    assert_eq!(rep.under.len(), 1);
}

/// Example 6: if R.z is a foreign key into S.z, the first disjunct's
/// answerable part never fires, so the answer is complete on *every* such
/// instance — our runtime detects it without knowing the constraint.
#[test]
fn example_6_foreign_key_dependency() {
    let p = program(
        "S^o. R^oo. B^ii. T^oo.\n\
         Q(x, y) :- not S(z), R(x, z), B(x, y).\n\
         Q(x, y) :- T(x, y).",
    );
    let q = p.single_query().unwrap();
    for seed in 0..10u64 {
        let mut rng = lap_prng::StdRng::seed_from_u64(seed);
        let db = lap::workload::gen_instance_with_inclusion(
            &p.schema,
            &lap::workload::InstanceConfig {
                domain_size: 8,
                tuples_per_relation: 12,
            },
            "R",
            1,
            "S",
            0,
            &mut rng,
        );
        let rep = answer_star(q, &p.schema, &db).unwrap();
        assert!(rep.is_complete(), "seed {seed}: fk-closed instance must be complete");
    }
}

/// Example 7: a binding {x/a, z/b} with R(a,b), ¬S(b) true produces the
/// overestimate tuple (a, null); with B^ii we cannot know whether a
/// matching B(a, y) exists, so no numeric completeness bound is possible.
#[test]
fn example_7_null_interpretation() {
    let p = program(
        "S^o. R^oo. B^ii. T^oo.\n\
         Q(x, y) :- not S(z), R(x, z), B(x, y).\n\
         Q(x, y) :- T(x, y).",
    );
    let q = p.single_query().unwrap();
    let db = Database::from_facts(r#"R(1, 2). S(3). B(1, 9)."#).unwrap();
    let rep = answer_star(q, &p.schema, &db).unwrap();
    assert!(rep.delta.contains(&vec![Value::int(1), Value::Null]));
    assert_eq!(rep.completeness, Completeness::Unknown);
    // The null row means "maybe one or more y": here B(1, 9) really exists,
    // and indeed the oracle finds (1, 9) which the underestimate missed.
    let oracle = lap::engine::eval_oracle(q, &db).unwrap();
    assert!(oracle.contains(&vec![Value::int(1), Value::int(9)]));
    assert!(!rep.under.contains(&vec![Value::int(1), Value::int(9)]));
}

/// Example 8: the domain-enumeration view dom(y) turns the false
/// underestimate of Q₁ into R(x,z), ¬S(z), dom(y), B(x,y) and recovers
/// certain answers.
#[test]
fn example_8_domain_enumeration() {
    let p = program(
        "S^o. R^oo. B^ii. T^oo.\n\
         Q(x, y) :- not S(z), R(x, z), B(x, y).\n\
         Q(x, y) :- T(x, y).",
    );
    let q = p.single_query().unwrap();
    let db = Database::from_facts("R(1, 2). S(3). B(1, 2). T(5, 6).").unwrap();
    let rep = answer_star_with_domain(q, &p.schema, &db, 10_000).unwrap();
    assert_eq!(rep.base.under.len(), 1, "plain underestimate sees only T");
    assert!(rep.improved_under.contains(&vec![Value::int(1), Value::int(2)]));
    assert!(rep.domain_complete);
    // The improvement is sound: improved ⊆ oracle.
    let oracle = lap::engine::eval_oracle(q, &db).unwrap();
    assert!(rep.improved_under.is_subset(&oracle));
}

/// Example 9: CQ processing. CQstable minimizes to M(x) :- F(x), B(x);
/// CQstable*/FEASIBLE compute A = F(x), B(x), F(z) and check A ⊑ Q.
#[test]
fn example_9_cq_processing() {
    let p = program(
        "F^o. B^i.\n\
         Q(x) :- F(x), B(x), B(y), F(z).",
    );
    let q = p.single_query().unwrap();
    let cq = &q.disjuncts[0];
    // CQstable's minimal query:
    let m = minimize_cq(cq);
    let expected_m = parse_query("Q(x) :- F(x), B(x).").unwrap().disjuncts[0].clone();
    assert!(cq_equivalent(&m, &expected_m));
    // CQstable*'s answerable part:
    let split = answerable_split(cq, &p.schema);
    let mut got: Vec<String> = split.answerable.iter().map(|l| l.to_string()).collect();
    got.sort();
    assert_eq!(got, vec!["B(x)", "F(x)", "F(z)"]);
    let a = split.ans_query(&cq.head).unwrap();
    assert!(cq_contained(&a, cq), "A ⊑ Q holds");
    // All three algorithms agree: feasible.
    assert!(cq_stable(cq, &p.schema));
    assert!(cq_stable_star(cq, &p.schema));
    assert!(feasible(q, &p.schema));
}

/// Example 10: UCQ processing. UCQstable minimizes to M(x) :- F(x);
/// UCQstable* takes P = (F∧G) ∨ F; FEASIBLE takes
/// ans(Q) = (F∧G) ∨ (F∧H) ∨ F. All accept.
#[test]
fn example_10_ucq_processing() {
    let p = program(
        "F^o. G^o. H^o. B^i.\n\
         Q(x) :- F(x), G(x).\n\
         Q(x) :- F(x), H(x), B(y).\n\
         Q(x) :- F(x).",
    );
    let q = p.single_query().unwrap();
    // UCQstable's minimal union:
    let m = minimize_ucq(q);
    assert_eq!(m.disjuncts.len(), 1);
    assert_eq!(m.disjuncts[0].to_string(), "Q(x) :- F(x).");
    assert!(ucq_equivalent(&m, q));
    // FEASIBLE's answerable part: three rules, B(y) dropped from the 2nd.
    let a = ans(q, &p.schema);
    let rules: Vec<String> = a.disjuncts.iter().map(|d| d.to_string()).collect();
    assert_eq!(
        rules,
        vec![
            "Q(x) :- F(x), G(x).",
            "Q(x) :- F(x), H(x).",
            "Q(x) :- F(x).",
        ]
    );
    // All three algorithms agree: feasible.
    assert!(ucq_stable(q, &p.schema));
    assert!(ucq_stable_star(q, &p.schema));
    assert!(feasible(q, &p.schema));
}
