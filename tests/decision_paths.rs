//! Fixture coverage for every `DecisionPath` variant, cross-checking each
//! PLAN\* fast path against the full containment criterion it elides.
//!
//! FEASIBLE's fast paths are only sound if they agree with Corollary 17
//! (`Q feasible ⟺ ans(Q) ⊑ Q`) on the cases they claim to decide:
//!
//! * `PlansCoincide` asserts feasibility *without* a containment check —
//!   so when the overestimate is null-free, running the skipped check must
//!   come back `true`.
//! * `OverestimateHasNull` asserts infeasibility because `ans(Q)` is
//!   unsafe; there is no query to check, but the verdict must be stable
//!   across every engine configuration.
//! * `ContainmentCheck` *is* the full criterion; the report's verdict must
//!   equal a direct `contained(ans(Q), Q)` call.

use lap::containment::{contained, ContainmentEngine, EngineConfig};
use lap::core::{feasible_detailed, feasible_detailed_with, DecisionPath, FeasibilityReport};
use lap::ir::parse_program;

/// Fixtures: (label, program, expected path, expected feasible).
const FIXTURES: &[(&str, &str, DecisionPath, bool)] = &[
    (
        "example 1: orderable CQ¬",
        "B^ioo. B^oio. C^oo. L^o.\n\
         Q(i, a, t) :- B(i, a, t), C(i, a), not L(i).",
        DecisionPath::PlansCoincide,
        true,
    ),
    (
        "unsat disjunct pruned, remainder orderable",
        "R^oo.\n\
         Q(x) :- R(x, y), not R(x, y).\n\
         Q(x) :- R(x, x).",
        DecisionPath::PlansCoincide,
        true,
    ),
    (
        "false query",
        "R^oo.\nQ(x) :- R(x, y), not R(x, y).",
        DecisionPath::PlansCoincide,
        true,
    ),
    (
        "example 4: null head variable",
        "S^o. R^oo. B^ii. T^oo.\n\
         Q(x, y) :- not S(z), R(x, z), B(x, y).\n\
         Q(x, y) :- T(x, y).",
        DecisionPath::OverestimateHasNull,
        false,
    ),
    (
        "negation blocks the only binding",
        "S^o. R^ii.\n\
         Q(x) :- R(x, z), not S(z).",
        DecisionPath::OverestimateHasNull,
        false,
    ),
    (
        "example 3: feasible only via containment",
        "B^ioo. B^oio. L^o.\n\
         Q(a) :- B(i, a, t), L(i), B(i2, a2, t).\n\
         Q(a) :- B(i, a, t), L(i), not B(i2, a2, t).",
        DecisionPath::ContainmentCheck,
        true,
    ),
    (
        "example 9: redundant unanswerable literal",
        "F^o. B^i.\nQ(x) :- F(x), B(x), B(y), F(z).",
        DecisionPath::ContainmentCheck,
        true,
    ),
    (
        "example 10: union absorption",
        "F^o. G^o. H^o. B^i.\n\
         Q(x) :- F(x), G(x).\n\
         Q(x) :- F(x), H(x), B(y).\n\
         Q(x) :- F(x).",
        DecisionPath::ContainmentCheck,
        true,
    ),
    (
        "genuinely infeasible via containment",
        "F^o. B^i.\nQ(x) :- F(x), B(y).",
        DecisionPath::ContainmentCheck,
        false,
    ),
];

fn run_fixture(program: &str) -> FeasibilityReport {
    let p = parse_program(program).unwrap();
    feasible_detailed(p.single_query().unwrap(), &p.schema)
}

#[test]
fn every_variant_is_covered_with_the_expected_verdict() {
    let mut seen = std::collections::HashSet::new();
    for (label, program, path, feasible) in FIXTURES {
        let r = run_fixture(program);
        assert_eq!(r.decided_by, *path, "{label}");
        assert_eq!(r.feasible, *feasible, "{label}");
        seen.insert(r.decided_by);
    }
    assert_eq!(seen.len(), 3, "a DecisionPath variant is untested: {seen:?}");
}

#[test]
fn fast_paths_agree_with_the_skipped_containment_check() {
    for (label, program, path, _) in FIXTURES {
        let p = parse_program(program).unwrap();
        let q = p.single_query().unwrap();
        let r = feasible_detailed(q, &p.schema);
        match path {
            DecisionPath::PlansCoincide => {
                // The fast path skipped `ans(Q) ⊑ Q`; run it anyway.
                assert!(r.containment.is_none(), "{label}: check ran on a fast path");
                if let Some(ans_q) = r.plans.over.as_query() {
                    assert!(
                        contained(&ans_q, q),
                        "{label}: fast path claims feasible but ans(Q) ⋢ Q"
                    );
                }
            }
            DecisionPath::OverestimateHasNull => {
                assert!(r.containment.is_none(), "{label}: check ran on a fast path");
                assert!(
                    r.plans.over.has_null(),
                    "{label}: null fast path without a null"
                );
                assert!(
                    r.plans.over.as_query().is_none(),
                    "{label}: a null overestimate must not read back as a query"
                );
            }
            DecisionPath::ContainmentCheck => {
                let stats = r.containment.expect("containment branch records stats");
                assert_eq!(
                    stats.engine_cache_hits + stats.engine_cache_misses,
                    1,
                    "{label}: exactly one engine decision expected ({stats:?})"
                );
                let ans_q = r
                    .plans
                    .over
                    .as_query()
                    .expect("containment branch implies null-free overestimate");
                assert_eq!(
                    r.feasible,
                    contained(&ans_q, q),
                    "{label}: report disagrees with a direct containment call"
                );
            }
        }
    }
}

#[test]
fn verdicts_and_paths_are_invariant_across_engine_configurations() {
    let configs = [
        EngineConfig::sequential(),
        EngineConfig {
            parallel: true,
            cache: false,
        },
        EngineConfig {
            parallel: false,
            cache: true,
        },
        EngineConfig::full(),
    ];
    for (label, program, path, feasible) in FIXTURES {
        let p = parse_program(program).unwrap();
        let q = p.single_query().unwrap();
        for cfg in configs {
            let engine = ContainmentEngine::new(cfg);
            // Twice: the second call exercises the cache-hit path where
            // enabled, and must not change anything.
            for round in 0..2 {
                let r = feasible_detailed_with(q, &p.schema, &engine);
                assert_eq!(r.decided_by, *path, "{label} under {cfg:?} round {round}");
                assert_eq!(r.feasible, *feasible, "{label} under {cfg:?} round {round}");
            }
            if cfg.cache && *path == DecisionPath::ContainmentCheck {
                assert_eq!(
                    engine.stats().cache_hits,
                    1,
                    "{label} under {cfg:?}: second decision should hit the cache"
                );
            }
        }
    }
}
