//! Property tests for the plan optimizer: every ordering strategy and the
//! minimal plan must preserve answers exactly, and costs must be ordered
//! exhaustive ≤ greedy (both executable).

use lap::core::{feasible_detailed, is_executable_cq};
use lap::engine::{eval_ordered_union, eval_ordered_union_parallel, SourceRegistry};
use lap::planner::{
    best_order, estimate_cost, greedy_order, minimal_executable_plan, optimize_plan_pair,
    CostModel, Strategy,
};
use lap::workload::{gen_instance, gen_query, gen_schema, InstanceConfig, QueryConfig, SchemaConfig};
use lap_prng::StdRng;

fn schema(seed: u64) -> lap::ir::Schema {
    gen_schema(
        &SchemaConfig {
            free_scan_fraction: 0.5,
            ..SchemaConfig::default()
        },
        &mut StdRng::seed_from_u64(seed % 8),
    )
}

#[test]
fn strategies_preserve_answers_and_costs_are_ordered() {
    let mut checked = 0;
    for seed in 0..150u64 {
        let schema = schema(seed);
        let q = gen_query(
            &schema,
            &QueryConfig {
                num_disjuncts: 2,
                positive_per_disjunct: 4,
                negative_per_disjunct: 1,
                extra_vars: 2,
                head_arity: 2,
                constant_fraction: 0.05,
                constant_pool: 3,
            },
            &mut StdRng::seed_from_u64(seed),
        );
        let report = feasible_detailed(&q, &schema);
        let db = gen_instance(
            &schema,
            &InstanceConfig {
                domain_size: 6,
                tuples_per_relation: 10,
            },
            &mut StdRng::seed_from_u64(seed + 1000),
        );
        let model = CostModel::from_database(&db);

        // Cost ordering on each overestimate disjunct.
        for part in &report.plans.over.parts {
            if part.cq.body.is_empty() {
                continue;
            }
            let Some(greedy) = greedy_order(&part.cq, &schema, &model) else {
                continue;
            };
            let (best, best_cost) = best_order(&part.cq, &schema, &model).expect("orderable");
            let greedy_cost = estimate_cost(&greedy, &schema, &model).expect("executable");
            assert!(is_executable_cq(&greedy, &schema), "seed {seed}");
            assert!(is_executable_cq(&best, &schema), "seed {seed}");
            assert!(
                best_cost.total() <= greedy_cost.total() + 1e-9,
                "seed {seed}: exhaustive worse than greedy"
            );
            checked += 1;
        }

        // Answer preservation across strategies (sequential + parallel).
        let baseline = {
            let mut reg = SourceRegistry::new(&db, &schema);
            eval_ordered_union(&report.plans.over.eval_parts(), &mut reg).expect("plan runs")
        };
        for strategy in [Strategy::Greedy, Strategy::Exhaustive] {
            let optimized = optimize_plan_pair(&report.plans, &schema, &model, strategy);
            let mut reg = SourceRegistry::new(&db, &schema);
            let rows =
                eval_ordered_union(&optimized.over.eval_parts(), &mut reg).expect("plan runs");
            assert_eq!(rows, baseline, "seed {seed}: {strategy:?} changed answers");
            let (par_rows, _) =
                eval_ordered_union_parallel(&optimized.over.eval_parts(), &db, &schema)
                    .expect("parallel runs");
            assert_eq!(par_rows, baseline, "seed {seed}: parallel changed answers");
        }

        // Minimal plan preserves the (feasible) query's answers.
        if report.feasible && !report.plans.over.has_null() {
            if let Some(min_plan) = minimal_executable_plan(&q, &schema) {
                let parts: Vec<_> = min_plan
                    .disjuncts
                    .iter()
                    .map(|cq| (cq.clone(), Vec::new()))
                    .collect();
                let mut reg = SourceRegistry::new(&db, &schema);
                let rows = eval_ordered_union(&parts, &mut reg).expect("minimal plan runs");
                assert_eq!(rows, baseline, "seed {seed}: minimal plan changed answers");
            }
        }
    }
    assert!(checked > 50, "too few orderable disjuncts exercised: {checked}");
}
