//! Semantic correctness of GAV unfolding: evaluating the unfolded query
//! over the *source* instance must equal evaluating the original query
//! over the *global* instance obtained by materializing every view.

use lap::engine::{eval_oracle, eval_oracle_single, Database};
use lap::ir::{parse_cq, parse_query, UnionQuery};
use lap::mediator::{unfold, GavView};
use lap::workload::{gen_instance, InstanceConfig};
use lap_prng::StdRng;
use std::collections::BTreeSet;

/// Materializes the views over a source instance: the global database
/// contains every source relation plus one relation per global predicate,
/// filled by evaluating each view as a query.
fn materialize(views: &[GavView], source_db: &Database) -> Database {
    let mut global = source_db.clone();
    for view in views {
        let rows = eval_oracle_single(&view.as_query(), source_db).expect("view evaluates");
        for row in rows {
            global
                .insert(view.defines().name.as_str(), row)
                .expect("consistent arity");
        }
    }
    global
}

fn check_equivalence(views: &[GavView], q: &UnionQuery, source_db: &Database) {
    let unfolded = unfold(q, views, 100_000).expect("unfolds");
    let via_sources = eval_oracle(&unfolded, source_db).expect("unfolded evaluates");
    let global_db = materialize(views, source_db);
    let via_views: BTreeSet<_> = eval_oracle(q, &global_db).expect("global evaluates");
    assert_eq!(
        via_sources, via_views,
        "unfolding changed semantics for {q}\nunfolded:\n{unfolded}"
    );
}

fn views(rules: &[&str]) -> Vec<GavView> {
    rules
        .iter()
        .map(|r| GavView::from_rule(&parse_cq(r).unwrap()).unwrap())
        .collect()
}

#[test]
fn single_view_join() {
    let vs = views(&["Book(i, a, t) :- Amazon(i, a, t, p)."]);
    let db = Database::from_facts(
        r#"Amazon(1, "adams", "hhgttg", 12). Amazon(2, "adams", "dirk", 9). Cat(1, "adams")."#,
    )
    .unwrap();
    let q = parse_query("Q(t) :- Book(i, a, t), Cat(i, a).").unwrap();
    check_equivalence(&vs, &q, &db);
}

#[test]
fn multi_view_union_and_join() {
    let vs = views(&[
        "Book(i, a, t) :- Amazon(i, a, t, p).",
        "Book(i, a, t) :- Bn(i, a, t).",
    ]);
    let db = Database::from_facts(
        r#"
        Amazon(1, "adams", "hhgttg", 12).
        Bn(2, "adams", "dirk gently"). Bn(1, "adams", "hhgttg").
        Cat(1, "adams"). Cat(2, "adams").
        "#,
    )
    .unwrap();
    let q = parse_query("Q(i, t) :- Book(i, a, t), Cat(i, a).").unwrap();
    check_equivalence(&vs, &q, &db);
    // Self-join over the global relation: 2 × 2 unfoldings.
    let q2 = parse_query("Q(a) :- Book(i, a, t), Book(i2, a, t2), Cat(i, a).").unwrap();
    check_equivalence(&vs, &q2, &db);
}

#[test]
fn negated_atomic_view() {
    let vs = views(&["Lib(i) :- Shelf(i).", "Book(i, a, t) :- Bn(i, a, t)."]);
    let db = Database::from_facts(
        r#"Bn(1, "adams", "hhgttg"). Bn(2, "adams", "dirk"). Shelf(1)."#,
    )
    .unwrap();
    let q = parse_query("Q(i) :- Book(i, a, t), not Lib(i).").unwrap();
    check_equivalence(&vs, &q, &db);
}

#[test]
fn constants_in_global_query() {
    let vs = views(&["Book(i, a, t) :- Bn(i, a, t)."]);
    let db = Database::from_facts(
        r#"Bn(1, "adams", "hhgttg"). Bn(2, "clarke", "2001")."#,
    )
    .unwrap();
    let q = parse_query(r#"Q(t) :- Book(i, "adams", t)."#).unwrap();
    check_equivalence(&vs, &q, &db);
}

#[test]
fn randomized_sweep() {
    // Source schema R0..R3 with small random instances; fixed view shapes
    // over them; random-ish queries built from a pool of templates.
    let schema = lap::ir::Schema::from_patterns(&[
        ("R0", "oo"),
        ("R1", "oo"),
        ("R2", "o"),
        ("R3", "ooo"),
    ])
    .unwrap();
    let vs = views(&[
        "G0(x, y) :- R0(x, y).",
        "G0(x, y) :- R1(x, y).",
        "G1(x) :- R2(x).",
        "G2(x, y) :- R0(x, z), R1(z, y).",
        "G2(x, y) :- R3(x, y, w).",
    ]);
    let templates = [
        "Q(x, y) :- G0(x, y).",
        "Q(x, y) :- G0(x, z), G0(z, y).",
        "Q(x, y) :- G2(x, y), G1(x).",
        "Q(x, y) :- G2(x, y), not G1(y).",
        "Q(x, y) :- G0(x, y), G2(y, z), not G1(z).",
        "Q(x, y) :- G0(x, y).\nQ(x, y) :- G2(x, y).",
        "Q(x, y) :- G0(x, y), R2(x).",
    ];
    for seed in 0..12u64 {
        let db = gen_instance(
            &schema,
            &InstanceConfig {
                domain_size: 5,
                tuples_per_relation: 9,
            },
            &mut StdRng::seed_from_u64(seed),
        );
        for t in &templates {
            let q = parse_query(t).unwrap();
            check_equivalence(&vs, &q, &db);
        }
    }
}
