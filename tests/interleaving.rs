//! Deterministic-interleaving harness for overlapped source I/O.
//!
//! The worker pool in `lap_engine::sched` may complete a batch's wire
//! calls in any order; correctness demands the *run* cannot tell. This
//! suite drives the same chaotic workload through an adversarial
//! scheduler that permutes completion order under a seeded PRNG and
//! proves, across 100+ seeds, that answers, degradation reports, call
//! statistics, retry/failure counts, the virtual wall-clock, and the
//! flight-recorder journal are all byte-identical to the ordered-pool
//! baseline — including runs whose interleavings race timeouts against
//! retries. Completion order is a scheduling artifact; outcomes are
//! planned in issue order before any worker starts.

use lap::core::plan_star;
use lap::engine::{
    execute_physical_union_degraded, lower_union, Database, DisjunctDegradation, EngineError,
    ExecConfig, FaultConfig, PhysicalUnion, RetryPolicy, SourceRegistry, Tuple,
};
use lap::ir::{Program, Schema};
use lap::obs::{JournalConfig, Recorder};
use lap::workload::{bookstore, BookstoreConfig};
use lap_prng::StdRng;
use std::collections::BTreeSet;

/// The federated bookstore the flight-recorder suite records: several
/// disjuncts, a negated literal, enough calls for faults to land.
fn scenario() -> (Program, Database) {
    let mut rng = StdRng::seed_from_u64(2004);
    let cfg = BookstoreConfig {
        books: 60,
        ..BookstoreConfig::default()
    };
    let bs = bookstore(&cfg, &mut rng);
    let program = lap::ir::parse_program(&bs.program_text()).unwrap();
    (program, bs.db)
}

/// Everything one degraded run can externally observe, journal included.
#[derive(Debug, PartialEq)]
struct Observed {
    rows: BTreeSet<Tuple>,
    drops: Vec<DisjunctDegradation>,
    calls: u64,
    tuples: u64,
    cache_hits: u64,
    retries: u64,
    failures: u64,
    virtual_ms: u64,
    journal: String,
}

/// Runs the under-plan through the degraded executor on a 4-worker
/// registry, with a replay-fidelity journal attached. `sched` picks the
/// adversarial completion permutation; `None` is the ordered baseline.
fn run_once(
    union: &PhysicalUnion,
    db: &Database,
    schema: &Schema,
    fault: FaultConfig,
    retry: RetryPolicy,
    sched: Option<u64>,
) -> Result<Observed, EngineError> {
    let recorder = Recorder::with_journal(JournalConfig::replay());
    let mut reg = SourceRegistry::new(db, schema)
        .recording(&recorder)
        .with_retry(retry)
        .with_fault_injection(fault)
        .with_io_workers(4);
    if let Some(seed) = sched {
        reg = reg.with_adversarial_sched(seed);
    }
    let (rows, drops) = execute_physical_union_degraded(union, &mut reg, ExecConfig::default())?;
    let stats = reg.stats();
    let snap = recorder.journal().unwrap().snapshot();
    snap.validate().expect("journal validates under every interleaving");
    Ok(Observed {
        rows,
        drops,
        calls: stats.calls,
        tuples: stats.tuples_returned,
        cache_hits: stats.cache_hits,
        retries: reg.retries_observed(),
        failures: reg.failures_observed(),
        virtual_ms: reg.virtual_elapsed_ms(),
        journal: snap.to_json().to_pretty(),
    })
}

/// The under-plan of the scenario's standing query, lowered once.
fn lowered(program: &Program) -> PhysicalUnion {
    let query = program.single_query().unwrap();
    let pair = plan_star(query, &program.schema);
    lower_union(&pair.under.eval_parts(), &program.schema)
}

#[test]
fn adversarial_completion_orders_cannot_change_the_run() {
    let (program, db) = scenario();
    let union = lowered(&program);
    let fault = FaultConfig::with_rate(0.3, 0xDECAF);
    let retry = RetryPolicy::standard();
    let baseline =
        run_once(&union, &db, &program.schema, fault, retry, None).expect("baseline run");
    assert!(
        baseline.failures > 0,
        "rate 0.3 must inject faults or the permutations race nothing"
    );
    for seed in 0..104u64 {
        let got = run_once(&union, &db, &program.schema, fault, retry, Some(seed))
            .expect("adversarial run");
        assert_eq!(
            got, baseline,
            "completion order under seed {seed} leaked into the observable run"
        );
    }
}

/// The nastiest interleavings race a timed-out attempt's backoff against
/// other lanes' completions: jittered latency straddles the per-call
/// timeout, so some attempts fault mid-batch and reschedule while their
/// batch-mates are still in flight. Every permutation must still merge
/// to the ordered baseline, journal bytes included.
#[test]
fn timeout_and_retry_races_stay_deterministic() {
    let (program, db) = scenario();
    let union = lowered(&program);
    let fault = FaultConfig {
        error_rate: 0.2,
        latency_ms: 5,
        latency_jitter_ms: 30,
        timeout_ms: Some(25),
        seed: 0x7E57,
    };
    let retry = RetryPolicy::standard();
    let baseline =
        run_once(&union, &db, &program.schema, fault, retry, None).expect("baseline run");
    assert!(
        baseline.retries > 0 && baseline.failures > 0,
        "the timeout profile must force retry races (retries {}, failures {})",
        baseline.retries,
        baseline.failures
    );
    for seed in 0..104u64 {
        let got = run_once(&union, &db, &program.schema, fault, retry, Some(seed))
            .expect("adversarial run");
        assert_eq!(
            got, baseline,
            "timeout/retry race under seed {seed} leaked into the observable run"
        );
    }
}

/// A worker pool wider than the batch and wider than [`MAX_IO_WORKERS`]'s
/// clamp must behave like the clamped width — and a single-key batch must
/// take the serial path untouched. Exercised through the public knob so
/// the clamp itself is under test.
#[test]
fn worker_width_is_clamped_and_degenerate_batches_stay_serial() {
    let (program, db) = scenario();
    let union = lowered(&program);
    let fault = FaultConfig::with_rate(0.25, 0xFEED);
    let retry = RetryPolicy::standard();
    let recorder = Recorder::with_journal(JournalConfig::light());
    let mut wide = SourceRegistry::new(&db, &program.schema)
        .recording(&recorder)
        .with_retry(retry)
        .with_fault_injection(fault)
        .with_io_workers(usize::MAX);
    assert_eq!(wide.io_workers(), lap::engine::MAX_IO_WORKERS);
    let (wide_rows, wide_drops) =
        execute_physical_union_degraded(&union, &mut wide, ExecConfig::default()).unwrap();
    let mut serial = SourceRegistry::new(&db, &program.schema)
        .with_retry(retry)
        .with_fault_injection(fault);
    let (serial_rows, serial_drops) =
        execute_physical_union_degraded(&union, &mut serial, ExecConfig::default()).unwrap();
    assert_eq!(wide_rows, serial_rows);
    assert_eq!(wide_drops, serial_drops);
    assert_eq!(wide.stats(), serial.stats());
    assert_eq!(wide.failures_observed(), serial.failures_observed());
    recorder
        .journal()
        .unwrap()
        .snapshot()
        .validate()
        .expect("journal validates at the clamped width");
}
