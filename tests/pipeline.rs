//! End-to-end pipeline sweep: for many seeded (schema, query, instance)
//! triples, run the full compile-time + runtime pipeline and check the
//! global invariants that tie the crates together.

use lap::constraints::{feasible_under, prune_unsatisfiable, ConstraintSet, InclusionDep};
use lap::containment::{contained, ucqn_equivalent};
use lap::core::{
    ans, answer_star, answer_star_with_domain, feasible_detailed, is_executable, is_orderable,
    DecisionPath,
};
use lap::engine::eval_oracle;
use lap::ir::{parse_program, Predicate};
use lap::workload::{
    gen_instance, gen_instance_with_inclusion, gen_query, gen_schema, InstanceConfig, QueryConfig,
    SchemaConfig,
};
use lap_prng::StdRng;

#[test]
fn full_pipeline_sweep() {
    let instance_cfg = InstanceConfig {
        domain_size: 6,
        tuples_per_relation: 8,
    };
    for seed in 0..120u64 {
        let schema = gen_schema(
            &SchemaConfig {
                num_relations: 4,
                min_arity: 1,
                max_arity: 3,
                patterns_per_relation: 2,
                input_fraction: 0.4,
                free_scan_fraction: 0.5,
            },
            &mut StdRng::seed_from_u64(seed % 12),
        );
        let q = gen_query(
            &schema,
            &QueryConfig {
                num_disjuncts: 1 + (seed % 3) as usize,
                positive_per_disjunct: 3,
                negative_per_disjunct: (seed % 2) as usize,
                extra_vars: 2,
                head_arity: 2,
                constant_fraction: 0.1,
                constant_pool: 3,
            },
            &mut StdRng::seed_from_u64(seed),
        );
        let db = gen_instance(&schema, &instance_cfg, &mut StdRng::seed_from_u64(seed + 99));

        // Compile-time invariants.
        let report = feasible_detailed(&q, &schema);
        if is_executable(&q, &schema) {
            assert!(is_orderable(&q, &schema), "seed {seed}");
        }
        if is_orderable(&q, &schema) {
            assert!(report.feasible, "seed {seed}: orderable must be feasible");
            assert_eq!(
                report.decided_by,
                DecisionPath::PlansCoincide,
                "seed {seed}: orderable queries are decided by the fast path"
            );
        }
        // Corollary 17: feasible ⟺ ans(Q) ⊑ Q (when ans(Q) is a query).
        if !report.plans.over.has_null() {
            let a = ans(&q, &schema);
            assert_eq!(report.feasible, contained(&a, &q), "seed {seed}");
            if report.feasible {
                assert!(ucqn_equivalent(&a, &q), "seed {seed}: Thm 16 equivalence");
            }
        } else {
            assert!(!report.feasible, "seed {seed}: null ⇒ infeasible");
        }

        // Runtime invariants.
        let oracle = eval_oracle(&q, &db).expect("safe query evaluates");
        let rep = answer_star(&q, &schema, &db).expect("plans execute");
        assert!(rep.under.is_subset(&oracle), "seed {seed}: unsound ansᵤ");
        if rep.is_complete() {
            assert_eq!(rep.under, oracle, "seed {seed}: bogus completeness claim");
        }
        // Domain refinement stays sound and monotone.
        let imp = answer_star_with_domain(&q, &schema, &db, 50_000).expect("refinement runs");
        assert!(imp.base.under.is_subset(&imp.improved_under), "seed {seed}");
        assert!(imp.improved_under.is_subset(&oracle), "seed {seed}: unsound refinement");
    }
}

#[test]
fn constraint_pruning_is_sound_on_closed_instances() {
    // The Example-6 scenario swept over many fk-closed instances: the
    // pruned query must produce exactly the same answers as the original.
    let p = parse_program(
        "S^o. R^oo. B^ii. T^oo.\n\
         Q(x, y) :- not S(z), R(x, z), B(x, y).\n\
         Q(x, y) :- T(x, y).",
    )
    .unwrap();
    let q = p.single_query().unwrap();
    let cs = ConstraintSet::new().with_inclusion(InclusionDep::new(
        Predicate::new("R", 2),
        vec![1],
        Predicate::new("S", 1),
        vec![0],
    ));
    let pruned = prune_unsatisfiable(q, &cs);
    assert_eq!(pruned.disjuncts.len(), 1);
    assert!(feasible_under(q, &cs, &p.schema).feasible);
    let cfg = InstanceConfig {
        domain_size: 7,
        tuples_per_relation: 10,
    };
    for seed in 0..40u64 {
        let db = gen_instance_with_inclusion(
            &p.schema,
            &cfg,
            "R",
            1,
            "S",
            0,
            &mut StdRng::seed_from_u64(seed),
        );
        let original = eval_oracle(q, &db).unwrap();
        let reduced = eval_oracle(&pruned, &db).unwrap();
        assert_eq!(original, reduced, "seed {seed}: pruning changed answers");
    }
}

#[test]
fn feasible_queries_get_exact_answers_from_the_overestimate() {
    // When FEASIBLE proves ans(Q) ≡ Q (no nulls), evaluating Qᵒ through
    // the restricted sources returns exactly ANSWER(Q, D).
    for seed in 0..60u64 {
        let schema = gen_schema(
            &SchemaConfig {
                free_scan_fraction: 0.6,
                ..SchemaConfig::default()
            },
            &mut StdRng::seed_from_u64(seed % 8),
        );
        let q = gen_query(
            &schema,
            &QueryConfig {
                num_disjuncts: 2,
                positive_per_disjunct: 3,
                negative_per_disjunct: 1,
                extra_vars: 2,
                head_arity: 2,
                constant_fraction: 0.0,
                constant_pool: 3,
            },
            &mut StdRng::seed_from_u64(seed),
        );
        let report = feasible_detailed(&q, &schema);
        if !report.feasible {
            continue;
        }
        let db = gen_instance(
            &schema,
            &InstanceConfig {
                domain_size: 5,
                tuples_per_relation: 7,
            },
            &mut StdRng::seed_from_u64(seed + 7),
        );
        let oracle = eval_oracle(&q, &db).unwrap();
        let rep = answer_star(&q, &schema, &db).unwrap();
        assert_eq!(rep.over, oracle, "seed {seed}: feasible overestimate must be exact");
    }
}
