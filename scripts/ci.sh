#!/usr/bin/env sh
# Offline CI gate. No network, no registry: the workspace has zero
# third-party dependencies, so every step below runs from a cold cache.
#
#   scripts/ci.sh          # full gate
#   SKIP_SLOW=1 scripts/ci.sh   # skip the widened slow-tests sweep
#   RUN_SOAK=1 scripts/ci.sh    # additionally run the heavy soak sweeps
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release (tier-1)"
cargo build --release

echo "==> cargo test (tier-1: root package, default sweeps)"
cargo test -q

echo "==> cargo test --workspace (every crate)"
cargo test -q --workspace

echo "==> executor differential suite (batched vs tuple-at-a-time reference)"
cargo test -q --test executor_differential

echo "==> chaos suite (seeded fault injection: determinism + soundness)"
cargo test -q --test chaos

echo "==> interleaving suite (adversarial completion orders, overlapped I/O)"
cargo test -q --test interleaving

if [ "${SKIP_SLOW:-0}" != "1" ]; then
    echo "==> cargo test --features slow-tests (widened seeded sweeps)"
    cargo test -q --features slow-tests
fi

if [ "${RUN_SOAK:-0}" = "1" ]; then
    echo "==> soak sweeps (heavy randomized invariants, release mode)"
    cargo test -q --release --test soak -- --ignored
fi

echo "==> cargo clippy -D warnings (crates touched by the engine work, incl. lap_engine::sched)"
cargo clippy -q --all-targets -p lap-prng -p lap-containment -p lap-core \
    -p lap-engine -p lap-planner -p lap-proto \
    -p lap-mediator -p lap-workload -p lap-obs -p lap-bench -p lap -- -D warnings

echo "==> observability smoke: lapq run --trace --metrics-json + obs-validate"
OBS_SNAPSHOT="${TMPDIR:-/tmp}/lapq_ci_metrics.json"
target/release/lapq run examples/data/bookstore.lap \
    examples/data/bookstore_facts.lap \
    --trace --metrics-json "$OBS_SNAPSHOT" > /dev/null
target/release/lapq obs-validate "$OBS_SNAPSHOT"
rm -f "$OBS_SNAPSHOT"

echo "==> flight-recorder smoke: record, validate, replay bit-for-bit"
FR_JOURNAL="${TMPDIR:-/tmp}/lapq_ci_journal.json"
FR_RUN="${TMPDIR:-/tmp}/lapq_ci_journal_run.txt"
FR_REPLAY="${TMPDIR:-/tmp}/lapq_ci_journal_replay.txt"
target/release/lapq run examples/data/bookstore.lap \
    examples/data/bookstore_facts.lap \
    --fault-rate 0.4 --fault-seed 11 --latency-ms 5 --retry 3 \
    --journal "$FR_JOURNAL" > "$FR_RUN"
target/release/lapq obs-validate "$FR_JOURNAL"
target/release/lapq replay "$FR_JOURNAL" > "$FR_REPLAY"
cmp "$FR_RUN" "$FR_REPLAY"
target/release/lapq report "$FR_JOURNAL" > /dev/null
rm -f "$FR_JOURNAL" "$FR_RUN" "$FR_REPLAY"

echo "==> chrome-trace smoke: export round-trips through obs-validate"
FR_TRACE="${TMPDIR:-/tmp}/lapq_ci_trace.json"
target/release/lapq run examples/data/bookstore.lap \
    examples/data/bookstore_facts.lap \
    --chrome-trace "$FR_TRACE" > /dev/null
target/release/lapq obs-validate "$FR_TRACE"
rm -f "$FR_TRACE"

echo "==> overlapped-chaos smoke: two runs at --io-workers 8 agree, replay is bit-for-bit"
OV_JOURNAL="${TMPDIR:-/tmp}/lapq_ci_overlap.json"
OV_RUN_A="${TMPDIR:-/tmp}/lapq_ci_overlap_a.txt"
OV_RUN_B="${TMPDIR:-/tmp}/lapq_ci_overlap_b.txt"
OV_REPLAY="${TMPDIR:-/tmp}/lapq_ci_overlap_replay.txt"
target/release/lapq run examples/data/bookstore.lap \
    examples/data/bookstore_facts.lap \
    --fault-rate 0.4 --fault-seed 11 --latency-ms 20 --retry 3 --io-workers 8 \
    --journal "$OV_JOURNAL" > "$OV_RUN_A"
target/release/lapq run examples/data/bookstore.lap \
    examples/data/bookstore_facts.lap \
    --fault-rate 0.4 --fault-seed 11 --latency-ms 20 --retry 3 --io-workers 8 \
    > "$OV_RUN_B"
cmp "$OV_RUN_A" "$OV_RUN_B"
target/release/lapq obs-validate "$OV_JOURNAL"
target/release/lapq replay "$OV_JOURNAL" > "$OV_REPLAY"
cmp "$OV_RUN_A" "$OV_REPLAY"
rm -f "$OV_JOURNAL" "$OV_RUN_A" "$OV_RUN_B" "$OV_REPLAY"

echo "==> columnar smoke: batch widths agree, faulted record replays bit-for-bit"
COL_JOURNAL="${TMPDIR:-/tmp}/lapq_ci_columnar.json"
COL_RUN="${TMPDIR:-/tmp}/lapq_ci_columnar_run.txt"
COL_REPLAY="${TMPDIR:-/tmp}/lapq_ci_columnar_replay.txt"
COL_W1="${TMPDIR:-/tmp}/lapq_ci_columnar_w1.txt"
COL_W64="${TMPDIR:-/tmp}/lapq_ci_columnar_w64.txt"
# The batch width changes dedup windows (and hence the call counts the
# run footer reports) but never the answers.
target/release/lapq run examples/data/bookstore.lap \
    examples/data/bookstore_facts.lap --batch-width 1 > "$COL_W1"
target/release/lapq run examples/data/bookstore.lap \
    examples/data/bookstore_facts.lap --batch-width 64 > "$COL_W64"
grep -v ' calls, ' "$COL_W1" > "$COL_W1.answers"
grep -v ' calls, ' "$COL_W64" > "$COL_W64.answers"
cmp "$COL_W1.answers" "$COL_W64.answers"
# A faulted overlapped columnar run records a journal that replays
# bit-for-bit without touching the sources.
target/release/lapq run examples/data/bookstore.lap \
    examples/data/bookstore_facts.lap \
    --fault-rate 0.4 --fault-seed 11 --latency-ms 5 --retry 3 \
    --batch-width 64 --io-workers 8 \
    --journal "$COL_JOURNAL" > "$COL_RUN"
target/release/lapq obs-validate "$COL_JOURNAL"
target/release/lapq replay "$COL_JOURNAL" > "$COL_REPLAY"
cmp "$COL_RUN" "$COL_REPLAY"
rm -f "$COL_JOURNAL" "$COL_RUN" "$COL_REPLAY" \
    "$COL_W1" "$COL_W64" "$COL_W1.answers" "$COL_W64.answers"

echo "==> calibration smoke: record, calibrate, re-run — plan differs, answers do not"
CAL_DIR="${TMPDIR:-/tmp}/lapq_ci_calibrate"
mkdir -p "$CAL_DIR"
# A schema where the static model's uniform extents pick the wrong join
# order: the A^o scan (40 rows) seeds the plan and D^io is called per row,
# while the true extents favour scanning D^oo (8 rows) first.
printf 'A^o. D^oo. D^io.\nQ(x, y) :- A(x), D(x, y).\n' > "$CAL_DIR/prog.lap"
: > "$CAL_DIR/facts.lap"
i=0
while [ "$i" -lt 40 ]; do
    printf 'A(%d). ' "$i" >> "$CAL_DIR/facts.lap"
    i=$((i + 1))
done
i=0
while [ "$i" -lt 8 ]; do
    printf 'D(%d, %d). ' "$i" "$((100 + i))" >> "$CAL_DIR/facts.lap"
    i=$((i + 1))
done
target/release/lapq run "$CAL_DIR/prog.lap" "$CAL_DIR/facts.lap" \
    --journal "$CAL_DIR/journal.json" > "$CAL_DIR/static.txt"
target/release/lapq calibrate "$CAL_DIR/journal.json" --out "$CAL_DIR/profile.json" > /dev/null
target/release/lapq obs-validate "$CAL_DIR/profile.json"
target/release/lapq run "$CAL_DIR/prog.lap" "$CAL_DIR/facts.lap" \
    --feedback "$CAL_DIR/profile.json" > "$CAL_DIR/cal_a.txt"
# Frozen profile => the calibrated run is bit-for-bit repeatable.
target/release/lapq run "$CAL_DIR/prog.lap" "$CAL_DIR/facts.lap" \
    --feedback "$CAL_DIR/profile.json" > "$CAL_DIR/cal_b.txt"
cmp "$CAL_DIR/cal_a.txt" "$CAL_DIR/cal_b.txt"
# The answers (and completeness) are identical; only the call schedule moved.
grep -v ' calls, ' "$CAL_DIR/static.txt" > "$CAL_DIR/static_answers.txt"
grep -v ' calls, ' "$CAL_DIR/cal_a.txt" > "$CAL_DIR/cal_answers.txt"
cmp "$CAL_DIR/static_answers.txt" "$CAL_DIR/cal_answers.txt"
if cmp -s "$CAL_DIR/static.txt" "$CAL_DIR/cal_a.txt"; then
    echo "calibration smoke: calibrated plan did not change the call schedule" >&2
    exit 1
fi
# explain --feedback shows the dual est/cal annotations.
target/release/lapq explain "$CAL_DIR/prog.lap" --feedback "$CAL_DIR/profile.json" \
    | grep -q '; cal '
rm -rf "$CAL_DIR"

echo "==> daemon smoke: lapd on an ephemeral port, answers byte-identical to one-shot run"
LAPD_DIR="${TMPDIR:-/tmp}/lapq_ci_daemon"
mkdir -p "$LAPD_DIR"
# Watcher off (--watch-interval-ms 0): drift stays pending until the
# forced sweep below, so `health` deterministically shows the flags. The
# automatic watcher path is covered by tests/daemon.rs and experiment E25.
target/release/lapd --bind 127.0.0.1:0 --watch-interval-ms 0 \
    > "$LAPD_DIR/lapd.log" 2>&1 &
LAPD_PID=$!
# Scrape the ephemeral port from the startup line.
LAPD_ADDR=""
i=0
while [ "$i" -lt 100 ]; do
    LAPD_ADDR=$(sed -n 's/^lapd listening on //p' "$LAPD_DIR/lapd.log")
    [ -n "$LAPD_ADDR" ] && break
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$LAPD_ADDR" ]; then
    echo "daemon smoke: lapd did not report a listen address" >&2
    kill "$LAPD_PID" 2>/dev/null || true
    exit 1
fi
# Three clients, mixed workloads, each cmp'ed against one-shot lapq run.
target/release/lapq run examples/data/bookstore.lap \
    examples/data/bookstore_facts.lap > "$LAPD_DIR/oneshot_1.txt"
target/release/lapq query-daemon examples/data/bookstore.lap \
    examples/data/bookstore_facts.lap --addr "$LAPD_ADDR" > "$LAPD_DIR/daemon_1.txt"
cmp "$LAPD_DIR/oneshot_1.txt" "$LAPD_DIR/daemon_1.txt"
target/release/lapq run examples/data/example4.lap \
    examples/data/example4_facts.lap > "$LAPD_DIR/oneshot_2.txt"
target/release/lapq query-daemon examples/data/example4.lap \
    examples/data/example4_facts.lap --addr "$LAPD_ADDR" > "$LAPD_DIR/daemon_2.txt"
cmp "$LAPD_DIR/oneshot_2.txt" "$LAPD_DIR/daemon_2.txt"
target/release/lapq run examples/data/bookstore.lap \
    examples/data/bookstore_facts.lap \
    --fault-rate 0.4 --fault-seed 11 --retry 3 --io-workers 2 > "$LAPD_DIR/oneshot_3.txt"
target/release/lapq query-daemon examples/data/bookstore.lap \
    examples/data/bookstore_facts.lap --addr "$LAPD_ADDR" \
    --fault-rate 0.4 --fault-seed 11 --retry 3 --io-workers 2 > "$LAPD_DIR/daemon_3.txt"
cmp "$LAPD_DIR/oneshot_3.txt" "$LAPD_DIR/daemon_3.txt"
# A repeat of client 1 must be served from the plan cache, same bytes.
target/release/lapq query-daemon examples/data/bookstore.lap \
    examples/data/bookstore_facts.lap --addr "$LAPD_ADDR" > "$LAPD_DIR/daemon_1b.txt"
cmp "$LAPD_DIR/oneshot_1.txt" "$LAPD_DIR/daemon_1b.txt"
target/release/lapq daemon-ctl "$LAPD_ADDR" stats > "$LAPD_DIR/stats.txt"
grep -q 'plan cache:' "$LAPD_DIR/stats.txt"
# Satellite detail: per-entry cache lines, telemetry tallies, latency
# percentiles are all part of the stats payload now.
grep -q 'entry:' "$LAPD_DIR/stats.txt"
grep -q 'telemetry:' "$LAPD_DIR/stats.txt"
grep -q 'latency: gate wait' "$LAPD_DIR/stats.txt"

echo "==> telemetry smoke: drift workload, health flags it, profile validates, forced sweep heals it"
DRIFT_PROG="$LAPD_DIR/drift.lap"
printf 'A^o. D^oo. D^io.\nQ(x, y) :- A(x), D(x, y).\n' > "$DRIFT_PROG"
# Phase 1 freezes the baselines at A=4 rows; phase 2 is the same query
# against a 100x larger A — rows-per-call blows past the drift factor.
DRIFT_SMALL="$LAPD_DIR/drift_small.lap"
DRIFT_BIG="$LAPD_DIR/drift_big.lap"
: > "$DRIFT_SMALL"
: > "$DRIFT_BIG"
i=0
while [ "$i" -lt 400 ]; do
    [ "$i" -lt 4 ] && printf 'A(%d). ' "$i" >> "$DRIFT_SMALL"
    printf 'A(%d). ' "$i" >> "$DRIFT_BIG"
    i=$((i + 1))
done
i=0
while [ "$i" -lt 8 ]; do
    printf 'D(%d, %d). ' "$i" $((100 + i)) >> "$DRIFT_SMALL"
    printf 'D(%d, %d). ' "$i" $((100 + i)) >> "$DRIFT_BIG"
    i=$((i + 1))
done
target/release/lapq query-daemon "$DRIFT_PROG" "$DRIFT_SMALL" \
    --addr "$LAPD_ADDR" > /dev/null
target/release/lapq query-daemon "$DRIFT_PROG" "$DRIFT_BIG" \
    --addr "$LAPD_ADDR" > /dev/null
# The drifted source shows up in the health rollup.
target/release/lapq daemon-ctl "$LAPD_ADDR" health > "$LAPD_DIR/health.txt"
grep -q '^A: .*drifting' "$LAPD_DIR/health.txt"
grep -q '^drift: A' "$LAPD_DIR/health.txt"
# The live profile round-trips through the exported-snapshot validator.
target/release/lapq daemon-ctl "$LAPD_ADDR" profile > "$LAPD_DIR/profile.json"
target/release/lapq obs-validate "$LAPD_DIR/profile.json"
# Forced recalibration sweep, then the handled drift stops flagging.
target/release/lapq daemon-ctl "$LAPD_ADDR" recalibrate | grep -q '^sweep: '
target/release/lapq daemon-ctl "$LAPD_ADDR" health > "$LAPD_DIR/health_after.txt"
if grep -q 'drifting' "$LAPD_DIR/health_after.txt"; then
    echo "telemetry smoke: drift still flagged after the forced sweep" >&2
    exit 1
fi
# The sweep republished exactly the plan one-shot calibrated planning
# builds from the same live profile: the post-sweep daemon answer is
# byte-identical to `lapq run --feedback <profile>` (answers AND call
# schedule). Plans the automatic watcher leaves untouched keep one-shot
# static bytes instead — tests/daemon.rs and experiment E25 pin that.
target/release/lapq run examples/data/bookstore.lap \
    examples/data/bookstore_facts.lap \
    --feedback "$LAPD_DIR/profile.json" > "$LAPD_DIR/oneshot_1_cal.txt"
target/release/lapq query-daemon examples/data/bookstore.lap \
    examples/data/bookstore_facts.lap --addr "$LAPD_ADDR" > "$LAPD_DIR/daemon_1c.txt"
cmp "$LAPD_DIR/oneshot_1_cal.txt" "$LAPD_DIR/daemon_1c.txt"
# Same answer tuples as the static plan — calibration only re-ordered.
grep -v ' calls, ' "$LAPD_DIR/oneshot_1.txt" > "$LAPD_DIR/oneshot_1_answers.txt"
grep -v ' calls, ' "$LAPD_DIR/daemon_1c.txt" > "$LAPD_DIR/daemon_1c_answers.txt"
cmp "$LAPD_DIR/oneshot_1_answers.txt" "$LAPD_DIR/daemon_1c_answers.txt"
target/release/lapq daemon-ctl "$LAPD_ADDR" stats \
    | grep -q 'recalibrations'
# Clean shutdown: the control frame must stop the process.
target/release/lapq daemon-ctl "$LAPD_ADDR" shutdown > /dev/null
i=0
while kill -0 "$LAPD_PID" 2>/dev/null; do
    if [ "$i" -ge 100 ]; then
        echo "daemon smoke: lapd did not exit after shutdown" >&2
        kill "$LAPD_PID" 2>/dev/null || true
        exit 1
    fi
    sleep 0.1
    i=$((i + 1))
done
grep -q 'lapd: shut down' "$LAPD_DIR/lapd.log"
rm -rf "$LAPD_DIR"

echo "==> resilience smoke: same seed must replay the same degraded answer"
CHAOS_A="${TMPDIR:-/tmp}/lapq_ci_chaos_a.txt"
CHAOS_B="${TMPDIR:-/tmp}/lapq_ci_chaos_b.txt"
target/release/lapq answer examples/data/bookstore.lap \
    examples/data/bookstore_facts.lap \
    --fault-rate 0.5 --fault-seed 7 --retry 3 > "$CHAOS_A"
target/release/lapq answer examples/data/bookstore.lap \
    examples/data/bookstore_facts.lap \
    --fault-rate 0.5 --fault-seed 7 --retry 3 > "$CHAOS_B"
cmp "$CHAOS_A" "$CHAOS_B"
rm -f "$CHAOS_A" "$CHAOS_B"

echo "==> ci.sh: all green"
