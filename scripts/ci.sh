#!/usr/bin/env sh
# Offline CI gate. No network, no registry: the workspace has zero
# third-party dependencies, so every step below runs from a cold cache.
#
#   scripts/ci.sh          # full gate
#   SKIP_SLOW=1 scripts/ci.sh   # skip the widened slow-tests sweep
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release (tier-1)"
cargo build --release

echo "==> cargo test (tier-1: root package, default sweeps)"
cargo test -q

echo "==> cargo test --workspace (every crate)"
cargo test -q --workspace

if [ "${SKIP_SLOW:-0}" != "1" ]; then
    echo "==> cargo test --features slow-tests (widened seeded sweeps)"
    cargo test -q --features slow-tests
fi

echo "==> cargo clippy -D warnings (crates touched by the engine work)"
cargo clippy -q --all-targets -p lap-prng -p lap-containment -p lap-core \
    -p lap-mediator -p lap-workload -p lap -- -D warnings

echo "==> ci.sh: all green"
