//! Quickstart: the paper's Example 1, end to end.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use lap::core::{answer_star, feasible_detailed, DecisionPath};
use lap::engine::{display_tuple, Database};
use lap::ir::parse_program;

fn main() {
    // A bookstore B(isbn, author, title) reachable by ISBN or by author,
    // a catalog C(isbn, author) we can scan freely, and a local library
    // L(isbn) we can scan. Which catalogued books can we buy that the
    // library doesn't have?
    let program = parse_program(
        "B^ioo. B^oio. C^oo. L^o.\n\
         Q(i, a, t) :- B(i, a, t), C(i, a), not L(i).",
    )
    .expect("well-formed program");
    let query = program.single_query().expect("one query");

    println!("query:\n  {query}\n");
    println!("access patterns:\n{}", indent(&program.schema.to_string()));

    // Compile time: is the query feasible?
    let report = feasible_detailed(query, &program.schema);
    println!("feasible: {} (decided by {:?})", report.feasible, report.decided_by);
    assert_eq!(report.decided_by, DecisionPath::PlansCoincide);
    println!("execution plan:");
    for part in &report.plans.under.parts {
        println!("  {}", part.display_with(&program.schema));
    }

    // Runtime: answer it over an instance, through pattern-enforcing
    // sources only.
    let db = Database::from_facts(
        r#"
        B(1, "tolkien",  "the lord of the rings").
        B(2, "tolkien",  "the hobbit").
        B(3, "adams",    "the hitchhiker's guide").
        B(4, "pratchett","small gods").
        C(1, "tolkien").  C(3, "adams").  C(4, "pratchett").
        L(1). L(4).
        "#,
    )
    .expect("facts parse");

    let answer = answer_star(query, &program.schema, &db).expect("plan executes");
    println!("\nanswers ({}):", answer.under.len());
    for t in &answer.under {
        println!("  {}", display_tuple(t));
    }
    println!(
        "complete: {} | source usage: {}",
        answer.is_complete(),
        answer.stats
    );
}

fn indent(s: &str) -> String {
    s.lines().map(|l| format!("  {l}\n")).collect()
}
