//! Integrity constraints and the semantic optimizer (paper, Example 6 and
//! the conclusion's "addition of integrity constraints"): a query that is
//! infeasible in general becomes feasible once the constraint-violating
//! disjunct is discarded at compile time.
//!
//! ```sh
//! cargo run --example semantic_optimizer
//! ```

use lap::constraints::{
    feasible_under, prune_unsatisfiable, satisfiable_under, ConstraintSet, InclusionDep,
    DEFAULT_CHASE_ROUNDS,
};
use lap::core::{answer_star, feasible_detailed};
use lap::engine::Database;
use lap::ir::{parse_program, Predicate};

fn main() {
    // Example 4's query over Example 6's constrained schema.
    let program = parse_program(
        "S^o. R^oo. B^ii. T^oo.\n\
         Q(x, y) :- not S(z), R(x, z), B(x, y).\n\
         Q(x, y) :- T(x, y).",
    )
    .expect("program parses");
    let query = program.single_query().expect("one query");

    println!("query:");
    for d in &query.disjuncts {
        println!("  {d}");
    }

    let plain = feasible_detailed(query, &program.schema);
    println!(
        "\nwithout constraints: feasible = {} ({:?})",
        plain.feasible, plain.decided_by
    );

    // Example 6: "if R.z is a foreign key referencing S.z, then always
    // {z | R(x,z)} ⊆ {z | S(z)}".
    let constraints = ConstraintSet::new().with_inclusion(InclusionDep::new(
        Predicate::new("R", 2),
        vec![1],
        Predicate::new("S", 1),
        vec![0],
    ));
    println!("\nintegrity constraints Σ:");
    print!("{constraints}");

    println!("\nchase-based satisfiability per disjunct:");
    for d in &query.disjuncts {
        let verdict = satisfiable_under(d, &constraints, DEFAULT_CHASE_ROUNDS);
        println!("  {d}  →  {verdict:?}");
    }

    let pruned = prune_unsatisfiable(query, &constraints);
    println!("\nafter the semantic optimizer:");
    for d in &pruned.disjuncts {
        println!("  {d}");
    }

    let constrained = feasible_under(query, &constraints, &program.schema);
    println!(
        "\nunder Σ: feasible = {} ({:?})",
        constrained.feasible, constrained.decided_by
    );

    // On any instance satisfying Σ, the pruned plan is exact.
    let db = Database::from_facts("R(1, 10). S(10). S(11). T(7, 8). B(1, 4).")
        .expect("facts parse");
    let rep = answer_star(&pruned, &program.schema, &db).expect("plan runs");
    println!(
        "\nruntime on a Σ-instance: {} answer(s), complete: {}",
        rep.under.len(),
        rep.is_complete()
    );
}
