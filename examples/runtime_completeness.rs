//! A walk through the paper's runtime machinery (Examples 4–8): the
//! under/overestimate plans of PLAN*, the Δ set and completeness verdicts
//! of ANSWER*, null interpretation, and domain enumeration.
//!
//! ```sh
//! cargo run --example runtime_completeness
//! ```

use lap::core::{answer_star, answer_star_with_domain, plan_star, Completeness};
use lap::engine::{display_tuple, Database};
use lap::ir::parse_program;

const PROGRAM: &str = "S^o. R^oo. B^ii. T^oo.\n\
                       Q(x, y) :- not S(z), R(x, z), B(x, y).\n\
                       Q(x, y) :- T(x, y).";

fn report(rep: &lap::core::AnswerReport) {
    let rows: Vec<String> = rep.under.iter().map(|t| display_tuple(t)).collect();
    println!("  ans_u = {{{}}}", rows.join(", "));
    let delta: Vec<String> = rep.delta.iter().map(|t| display_tuple(t)).collect();
    println!("  Δ     = {{{}}}", delta.join(", "));
    match rep.completeness {
        Completeness::Complete => println!("  → answer is complete"),
        Completeness::AtLeast(r) => println!(
            "  → answer is not known to be complete; at least {:.0}% complete",
            r * 100.0
        ),
        Completeness::Unknown => {
            println!("  → answer is not known to be complete (Δ contains null)")
        }
    }
}

fn main() {
    let program = parse_program(PROGRAM).expect("program parses");
    let query = program.single_query().expect("one query");
    println!("query (Example 4):");
    for d in &query.disjuncts {
        println!("  {d}");
    }

    let pair = plan_star(query, &program.schema);
    println!("\nPLAN* underestimate Qu:");
    for p in &pair.under.parts {
        println!("  {p}");
    }
    println!("PLAN* overestimate Qo:");
    for p in &pair.over.parts {
        println!("  {p}");
    }

    let scenarios: [(&str, &str); 2] = [
        (
            "Example 5 — the unanswerable part is irrelevant (R.z ⊆ S):",
            "R(1, 10). S(10). T(7, 8). B(1, 4).",
        ),
        (
            "Example 7 — a surviving R(x,z), ¬S(z) binding yields (x, null):",
            "R(1, 2). S(3). T(7, 8). B(1, 9).",
        ),
    ];

    for (label, facts) in scenarios {
        println!("\n{label}");
        println!("  D = {{ {} }}", facts.trim());
        let db = Database::from_facts(facts).expect("facts parse");
        let rep = answer_star(query, &program.schema, &db).expect("plans run");
        report(&rep);
    }

    // A query whose overestimate-only disjunct binds every head variable:
    // Δ is null-free, so ANSWER* can report a numeric completeness bound.
    println!("\nnull-free Δ — a ratio can be reported:");
    let ratio_program = parse_program(
        "F^o. G^o. B^i.\n\
         Q(x) :- F(x).\n\
         Q(x) :- G(x), B(y).",
    )
    .expect("program parses");
    let ratio_query = ratio_program.single_query().expect("one query");
    for d in &ratio_query.disjuncts {
        println!("  {d}");
    }
    let db = Database::from_facts("F(1). G(2). G(3). B(7).").expect("facts parse");
    let rep = answer_star(ratio_query, &ratio_program.schema, &db).expect("plans run");
    report(&rep);

    // Example 8: improve the underestimate with dom(x) views.
    println!("\nExample 8 — domain enumeration:");
    let db = Database::from_facts("R(1, 2). S(3). B(1, 2). T(5, 6).").expect("facts parse");
    let rep =
        answer_star_with_domain(query, &program.schema, &db, 10_000).expect("plans run");
    let base: Vec<String> = rep.base.under.iter().map(|t| display_tuple(t)).collect();
    let improved: Vec<String> = rep.improved_under.iter().map(|t| display_tuple(t)).collect();
    println!("  plain ans_u     = {{{}}}", base.join(", "));
    println!(
        "  improved ans_u  = {{{}}} ({} domain calls, fixpoint reached: {})",
        improved.join(", "),
        rep.domain_calls,
        rep.domain_complete
    );
}
