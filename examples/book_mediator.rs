//! A small mediator over book-related web services, exercising the whole
//! compile-time pipeline on several queries: executable, orderable-only,
//! feasible-only (Example 3), and infeasible.
//!
//! ```sh
//! cargo run --example book_mediator
//! ```

use lap::core::{answer_star, feasible_detailed, is_executable, is_orderable, DecisionPath};
use lap::engine::{display_tuple, Database};
use lap::ir::parse_program;

const PATTERNS: &str = "B^ioo. B^oio. C^oo. L^o. P^io.";

const FACTS: &str = r#"
    B(1, "tolkien",   "the lord of the rings").
    B(2, "tolkien",   "the hobbit").
    B(3, "adams",     "the hitchhiker's guide").
    B(4, "pratchett", "small gods").
    B(5, "adams",     "dirk gently").
    C(1, "tolkien"). C(2, "tolkien"). C(3, "adams"). C(4, "pratchett").
    L(1). L(3).
    P(1, 30). P(2, 15). P(3, 12). P(4, 9). P(5, 11).
"#;

fn main() {
    let queries = [
        (
            "executable as written",
            "Q(i, a, t) :- C(i, a), B(i, a, t), not L(i).",
        ),
        (
            "orderable (needs reordering)",
            "Q(i, a, t) :- B(i, a, t), C(i, a), not L(i).",
        ),
        (
            "feasible but not orderable (Example 3)",
            "Q(a) :- B(i, a, t), L(i), B(i2, a2, t).\n\
             Q(a) :- B(i, a, t), L(i), not B(i2, a2, t).",
        ),
        (
            "priced catalog books (join through P^io)",
            "Q(t, p) :- C(i, a), B(i, a, t), P(i, p).",
        ),
        (
            "infeasible: price lookup without an ISBN",
            "Q(p) :- P(i, p).",
        ),
    ];

    let db = Database::from_facts(FACTS).expect("facts parse");

    for (label, text) in queries {
        let program =
            parse_program(&format!("{PATTERNS}\n{text}")).expect("well-formed program");
        let query = program.single_query().expect("one query");
        println!("== {label}");
        for d in &query.disjuncts {
            println!("   {d}");
        }
        println!(
            "   executable: {} | orderable: {}",
            is_executable(query, &program.schema),
            is_orderable(query, &program.schema)
        );
        let report = feasible_detailed(query, &program.schema);
        println!(
            "   feasible: {} (decided by {:?})",
            report.feasible, report.decided_by
        );
        if report.decided_by != DecisionPath::OverestimateHasNull {
            for part in &report.plans.over.parts {
                println!("   plan: {}", part.display_with(&program.schema));
            }
        }
        match answer_star(query, &program.schema, &db) {
            Ok(answer) => {
                let rows: Vec<String> = answer.under.iter().map(|t| display_tuple(t)).collect();
                println!(
                    "   answers: {{{}}} complete: {} ({})",
                    rows.join(", "),
                    answer.is_complete(),
                    answer.stats
                );
                if !answer.delta.is_empty() {
                    let extra: Vec<String> =
                        answer.delta.iter().map(|t| display_tuple(t)).collect();
                    println!("   possible additional answers Δ: {{{}}}", extra.join(", "));
                }
            }
            Err(e) => println!("   runtime error: {e}"),
        }
        println!();
    }
}
