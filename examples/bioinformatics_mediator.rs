//! A BIRN-style scenario (paper, Section 4.2 and [GLM03]): a mediator
//! unfolds a global-as-view query over heterogeneous neuroscience sources
//! into a UCQ¬ plan. Some disjuncts are unsatisfiable (artifacts of
//! implicit integrity constraints), some are blocked behind input-only
//! sources — yet ANSWER* can still certify complete answers at runtime.
//!
//! ```sh
//! cargo run --example bioinformatics_mediator
//! ```

use lap::core::{answer_star, answer_star_with_domain, feasible_detailed};
use lap::engine::{display_tuple, Database};
use lap::ir::parse_program;

fn main() {
    // Global view: subjects with an abnormal structure measurement.
    //   MorphDb^oo  (subject, structure)  — a morphometry database, scannable
    //   SegDb^io    (subject, structure)  — a segmentation service, by subject
    //   Atlas^oo    (structure)           — the reference atlas, scannable
    //   Excluded^o  (subject)             — withdrawn subjects, scannable
    //   Genotype^ii (subject, allele)     — a genotyping service: both
    //                                       subject AND allele must be given!
    //
    // The GAV unfolding produces one disjunct per source capable of
    // providing the measurement, plus an (unsatisfiable) branch a naive
    // unfolder emits for subjects both included and excluded.
    let program = parse_program(
        "MorphDb^oo. SegDb^io. Atlas^o. Excluded^o. Genotype^ii.\n\
         Q(s, r) :- MorphDb(s, r), Atlas(r), not Excluded(s).\n\
         Q(s, r) :- Excluded(s), not Excluded(s), MorphDb(s, r).\n\
         Q(s, r) :- MorphDb(s, r2), SegDb(s, r), Atlas(r), not Excluded(s).\n\
         Q(s, r) :- MorphDb(s, r), Genotype(s, g), Atlas(r).",
    )
    .expect("program parses");
    let query = program.single_query().expect("one query");

    println!("unfolded UCQ¬ plan ({} disjuncts):", query.disjuncts.len());
    for d in &query.disjuncts {
        println!("  {d}");
    }

    let report = feasible_detailed(query, &program.schema);
    println!(
        "\ncompile time: feasible = {} (decided by {:?})",
        report.feasible, report.decided_by
    );
    println!("underestimate plan Qu:");
    for p in &report.plans.under.parts {
        println!("  {p}");
    }
    println!("overestimate plan Qo:");
    for p in &report.plans.over.parts {
        println!("  {p}");
    }

    let db = Database::from_facts(
        r#"
        MorphDb("subj1", "hippocampus"). MorphDb("subj2", "amygdala").
        MorphDb("subj3", "cortex").
        SegDb("subj1", "hippocampus").   SegDb("subj2", "thalamus").
        Atlas("hippocampus"). Atlas("amygdala"). Atlas("thalamus"). Atlas("cortex").
        Excluded("subj3").
        Genotype("subj1", "apoe4").
        "#,
    )
    .expect("facts parse");

    let rep = answer_star(query, &program.schema, &db).expect("plans run");
    println!("\nruntime answers (certain):");
    for t in &rep.under {
        println!("  {}", display_tuple(t));
    }
    println!("Δ (possible extra answers):");
    for t in &rep.delta {
        println!("  {}", display_tuple(t));
    }
    println!("completeness: {:?}", rep.completeness);
    println!("source usage: {}", rep.stats);

    // The genotype branch is blocked behind Genotype^ii; domain enumeration
    // can partially recover it.
    let improved =
        answer_star_with_domain(query, &program.schema, &db, 10_000).expect("plans run");
    println!(
        "\nwith dom(x) views: {} certain answers (was {}), {} domain calls, fixpoint: {}",
        improved.improved_under.len(),
        improved.base.under.len(),
        improved.domain_calls,
        improved.domain_complete,
    );
}
