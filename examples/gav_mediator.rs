//! The full mediator pipeline behind one API: global-as-view definitions,
//! unfolding, semantic optimization, feasibility, runtime answering —
//! the shape of the BIRN prototype described in the paper's Section 6.
//!
//! ```sh
//! cargo run --example gav_mediator
//! ```

use lap::constraints::{ConstraintSet, InclusionDep};
use lap::engine::{display_tuple, Database};
use lap::ir::{parse_query, Predicate};
use lap::mediator::Mediator;

fn main() {
    // Sources: two book vendors, two catalogs, a library shelf list.
    // Patterns: Vendor1 also supports lookup by ISBN; everything else
    // scans. Global schema: Book(isbn, author, title), Catalog(isbn,
    // author), Lib(isbn).
    let mediator = Mediator::from_program(
        "Vendor1^oooo. Vendor1^iooo. Vendor2^ooo.\n\
         CatA^oo. CatB^oo. Shelf^o.\n\
         Book(i, a, t) :- Vendor1(i, a, t, p).\n\
         Book(i, a, t) :- Vendor2(i, a, t).\n\
         Catalog(i, a) :- CatA(i, a).\n\
         Catalog(i, a) :- CatB(i, a).\n\
         Lib(i) :- Shelf(i).",
    )
    .expect("mediator definition parses")
    .with_constraints(
        // Vendor2 only sells what the library already shelves.
        ConstraintSet::new().with_inclusion(InclusionDep::new(
            Predicate::new("Vendor2", 3),
            vec![0],
            Predicate::new("Shelf", 1),
            vec![0],
        )),
    );

    println!("views:");
    for v in mediator.views() {
        println!("  {v}");
    }

    // A *global* query: catalogued books we could buy that the library
    // doesn't have.
    let q = parse_query("Q(i, a, t) :- Book(i, a, t), Catalog(i, a), not Lib(i).")
        .expect("query parses");
    println!("\nglobal query:\n  {q}");

    let plan = mediator.plan(&q).expect("pipeline runs");
    println!(
        "\nunfolded into {} disjunct(s) over the sources:",
        plan.unfolded.disjuncts.len()
    );
    for d in &plan.unfolded.disjuncts {
        println!("  {d}");
    }
    println!(
        "\nafter the semantic optimizer (Vendor2 ⊆ Shelf): {} disjunct(s):",
        plan.pruned.disjuncts.len()
    );
    for d in &plan.pruned.disjuncts {
        println!("  {d}");
    }
    println!(
        "\nfeasible: {} ({:?})",
        plan.feasibility.feasible, plan.feasibility.decided_by
    );

    let db = Database::from_facts(
        r#"
        Vendor1(1, "adams", "hhgttg", 12). Vendor1(2, "clarke", "2001", 9).
        Vendor2(3, "lem", "solaris").
        CatA(1, "adams"). CatB(2, "clarke"). CatA(3, "lem").
        Shelf(2). Shelf(3).
        "#,
    )
    .expect("facts parse");
    let (_, answer) = mediator.answer(&q, &db).expect("answering runs");
    println!("\nanswers:");
    for t in &answer.under {
        println!("  {}", display_tuple(t));
    }
    println!("complete: {} | {}", answer.is_complete(), answer.stats);
}
